//! The cycle-level out-of-order pipeline.
//!
//! Six stages as in the paper (Section 4.3): fetch, dispatch (decode +
//! rename), issue, execute, write-back, commit. Because the front end is
//! perfect (Table 4), fetch+dispatch collapse into pulling decoded
//! instructions from the functional trace; renaming collapses into
//! producer-sequence dependence tracking (WAR/WAW vanish exactly as a
//! renamer would make them).
//!
//! ## Hot-loop layout and the event-driven core
//!
//! In-flight state lives in a structure-of-arrays ring buffer ([`RobSoa`]):
//! each per-slot field is its own array, so the per-cycle walks (issue
//! wake-up, memory-stage scan, commit) touch dense homogeneous memory
//! instead of striding over wide structs.
//!
//! Two main loops drive the stages, selected by
//! [`crate::CoreMode`] (`ARL_CORE`):
//!
//! * **Event** (default): after executing a cycle on which provably
//!   nothing happened (no commit, no issue, no dispatch, no memory-stage
//!   mutation, no pending ARPT fault), the core jumps straight to the
//!   cycle before the next scheduled wake-up — the minimum over the
//!   [`crate::EventWheel`] (FU completions, address-generation finishes,
//!   memory returns, redirect re-issues) and
//!   [`MemSystem::next_event_after`] (MSHR releases, fault-window
//!   boundaries). The skipped span is replayed in bulk: per-cycle
//!   dispatch-stall counters are multiplied out and the probe receives one
//!   [`Probe::record_span`] with the (provably constant) cycle
//!   observation, so `useful + Σstalls == cycles` still holds exactly.
//! * **Legacy**: tick every cycle, as before the event wheel existed.
//!
//! Both cores share every stage function and produce bit-identical
//! [`SimStats`] and probe output; `tests/core_differential.rs` pins this
//! across the full workload suite, and DESIGN.md spells out the invariant
//! argument (why every state-changing threshold is a scheduled event).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use arl_asm::Program;
use arl_core::{classify_fu, static_hint, Arpt, FuClass, StaticHint, NO_SRC};
use arl_isa::Inst;
use arl_sim::{EntrySliceSource, Machine, ModelHints, SourceError, TraceEntry, TraceSource};

use crate::cache::{MemSystem, Route};
use crate::config::{CoreMode, MachineConfig, RecoveryMode};
use crate::fault::{FaultKind, TimingFault};
use crate::metrics::SimStats;
use crate::probe::{CycleObs, NullProbe, Probe, StallCause};
use crate::state::{
    corrupt, read_arpt, read_stats, route_from, route_tag, write_arpt, write_stats, MidCycle,
    StateReader, StateWriter, CORE_EVENT, STATE_MAGIC, STATE_VERSION,
};
use crate::valuepred::StridePredictor;
use crate::wheel::EventWheel;

/// Functional-unit classes (Table 4: 16 int ALUs, 16 FP ALUs, 4 int
/// mul/div, 4 FP mul/div).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Fu {
    IntAlu,
    FpAlu,
    IntMulDiv,
    FpMulDiv,
}

/// Execution latency and FU class per instruction (MIPS R10000-flavoured).
/// The table itself lives in [`arl_core::classify_fu`] so the trace-time
/// compiler (`arl-trace` v3) and both cores share one definition and
/// cannot drift.
fn classify(inst: &Inst) -> (Fu, u64) {
    let (class, latency) = classify_fu(inst);
    (fu_of_class(class), latency)
}

/// The pipeline-local [`Fu`] for a shared [`FuClass`] (discriminants
/// match; compiled traces and state blobs both carry the `FuClass` tags).
fn fu_of_class(class: FuClass) -> Fu {
    match class {
        FuClass::IntAlu => Fu::IntAlu,
        FuClass::FpAlu => Fu::FpAlu,
        FuClass::IntMulDiv => Fu::IntMulDiv,
        FuClass::FpMulDiv => Fu::FpMulDiv,
    }
}

/// Serialization tag for a [`Fu`] (sharded-replay state blobs).
fn fu_from(tag: u8) -> Result<Fu, SourceError> {
    match tag {
        0 => Ok(Fu::IntAlu),
        1 => Ok(Fu::FpAlu),
        2 => Ok(Fu::IntMulDiv),
        3 => Ok(Fu::FpMulDiv),
        _ => Err(corrupt("functional-unit class out of range")),
    }
}

/// Serialization tag for a [`MemPhase`] (sharded-replay state blobs).
fn phase_tag(phase: MemPhase) -> u8 {
    match phase {
        MemPhase::None => 0,
        MemPhase::WaitAgen => 1,
        MemPhase::Ready => 2,
        MemPhase::Accessed => 3,
    }
}

fn phase_from(tag: u8) -> Result<MemPhase, SourceError> {
    match tag {
        0 => Ok(MemPhase::None),
        1 => Ok(MemPhase::WaitAgen),
        2 => Ok(MemPhase::Ready),
        3 => Ok(MemPhase::Accessed),
        _ => Err(corrupt("memory phase out of range")),
    }
}

const NO_CYCLE: u64 = u64::MAX;
/// Sentinel for "no producer" in the dependence arrays and renamer map.
const NO_SEQ: u64 = u64::MAX;
/// Sentinel for "no renamer claim" in [`RobSoa::claimed`].
const NO_REG: u8 = u8::MAX;
/// [`RobSoa::issue_q`]/[`RobSoa::mem_q`] value: not appointed anywhere.
const QUEUE_NONE: u64 = u64::MAX;
/// [`RobSoa::issue_q`]/[`RobSoa::mem_q`] value: on the every-cycle retry
/// list (blocked on bandwidth/ordering, or a stale-early wake bound).
const QUEUE_RETRY: u64 = u64::MAX - 1;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum MemPhase {
    /// Not a memory instruction.
    None,
    /// Waiting for address generation (i.e. for issue).
    WaitAgen,
    /// Address known; verification done; waiting to start the access
    /// (ordering, ports) or — for stores — waiting for commit.
    Ready,
    /// Access in flight or complete.
    Accessed,
}

// Per-slot boolean fields, packed into one byte per slot.
const F_ISSUED: u8 = 1 << 0;
/// A confident, *correct* value prediction covers this result.
const F_VALUE_PRED: u8 = 1 << 1;
const F_IS_LOAD: u8 = 1 << 2;
const F_IS_STACK: u8 = 1 << 3;
const F_VERIFIED: u8 = 1 << 4;
/// The ARPT (not a static rule) made the steering decision.
const F_ARPT_PRED: u8 = 1 << 5;
/// Wrongly steered, detected, and re-dispatched on the correct path
/// (counted at commit).
const F_RECOVERED: u8 = 1 << 6;
/// A store with a live registration (`dep_index` 3) on its data
/// producer's wake list; prevents double-registration after a squash.
const F_DATA_WAKE: u8 = 1 << 7;

/// One in-flight instruction's cycle-level state, packed so a slot spans
/// 2–3 cache lines instead of scattering across ~25 column arrays — each
/// stage visit touches one record, not two dozen lines. Field groups are
/// ordered by the stage that reads them (issue path, memory path, wake
/// lists, packed small fields).
#[derive(Clone, Copy)]
struct Slot {
    dispatch_cycle: u64,
    /// Cycle the result is available to consumers (`NO_CYCLE` until known).
    complete_at: u64,
    /// Provable lower bound on the first cycle the slot could pass the
    /// authoritative issue check.
    earliest_try: u64,
    /// Where the slot currently sits in the issue stage's appointment
    /// book: a future bucket key, [`QUEUE_RETRY`], or [`QUEUE_NONE`]
    /// (parked on wake lists, issued, or not dispatched). Stale bucket
    /// copies are dropped when this no longer matches their key.
    issue_q: u64,
    /// Producer sequence numbers this instruction waits on to *issue*
    /// (for stores: the address operands only); `NO_SEQ` = no dependence.
    deps: [u64; 3],
    /// For stores: the producer of the store *data*, tracked separately —
    /// the address is generated as soon as the base register is ready,
    /// exactly so younger loads are not serialized behind store data.
    data_dep: u64,
    addr: u64,
    /// Address-generation completion cycle.
    agen_done_at: u64,
    /// Earliest cycle the memory stage may process it (after redirect).
    mem_ready_at: u64,
    /// Same as `issue_q`, for the memory stage's appointment book.
    mem_q: u64,
    /// The folded-before-capacity ARPT training key (`Arpt::key`) for
    /// [`F_ARPT_PRED`] slots, 0 otherwise. Replaces carrying `pc`/`ghr`/`ra`
    /// per slot: dispatch computes it once (or takes it precompiled from a
    /// v3 trace) and region verification trains through `Arpt::update_key`.
    arpt_key: u64,
    /// Intrusive next-pointer (an older store's seq, or `NO_SEQ`) chaining
    /// in-flight stores that share a `(block, route)` key — the store
    /// index's per-block list (see [`TimingSim::store_blocks`]). Not
    /// serialized; import rebuilds the chains from the slot records.
    store_next: u64,
    latency: u64,
    // Issue wake-up support: the slot enters the issue appointment book at
    // `earliest_try` once `unknown_deps` (producers whose completion cycle
    // is not yet known) reaches zero. Producers keep an intrusive list of
    // waiting consumers: `wake_head` holds a packed
    // `(consumer_seq << 2) | dep_index` handle and the consumer's
    // `wake_next[dep_index]` chains it, so firing a completed producer's
    // list touches exactly its consumers. `dep_index` 3 is the store-data
    // dependence (guarded by [`F_DATA_WAKE`]), which wakes the memory
    // stage rather than issue.
    wake_head: u64,
    wake_next: [u64; 4],
    fu: Fu,
    mem: MemPhase,
    route: Route,
    flags: u8,
    unknown_deps: u8,
    /// Whether the slot's issue preconditions must be re-verified: set by a
    /// squash (which revokes completions and pushes dispatch times out) and
    /// conservatively on state import. Non-stale slots reaching their
    /// booked issue cycle provably satisfy `dispatch_cycle < cycle` and
    /// `deps_ready` (consumers of a squashed producer are younger than it,
    /// hence themselves squash-marked), so the issue stage skips both
    /// checks. Not serialized.
    stale: bool,
    /// Registers whose renamer claim this slot holds (`NO_REG` = none):
    /// commit releases exactly these instead of scanning all 64.
    claimed: [u8; 2],
}

impl Slot {
    const EMPTY: Slot = Slot {
        dispatch_cycle: 0,
        complete_at: NO_CYCLE,
        earliest_try: 0,
        issue_q: QUEUE_NONE,
        deps: [NO_SEQ; 3],
        data_dep: NO_SEQ,
        addr: 0,
        agen_done_at: NO_CYCLE,
        mem_ready_at: 0,
        mem_q: QUEUE_NONE,
        arpt_key: 0,
        store_next: NO_SEQ,
        latency: 0,
        wake_head: NO_SEQ,
        wake_next: [NO_SEQ; 4],
        fu: Fu::IntAlu,
        mem: MemPhase::None,
        route: Route::DataCache,
        flags: 0,
        unknown_deps: 0,
        stale: false,
        claimed: [NO_REG; 2],
    };
}

/// The in-flight window as a ring buffer of packed [`Slot`] records: slot
/// `seq` lives at physical index `(head + (seq - head_seq)) & mask`.
/// Capacity is the ROB size rounded up to a power of two and never grows,
/// so no per-cycle allocation happens on the hot path.
struct RobSoa {
    mask: usize,
    head: usize,
    len: usize,
    head_seq: u64,
    slot: Vec<Slot>,
    /// Length of the maximal head-contiguous run of slots with a known
    /// completion (`complete_at != NO_CYCLE`) — exactly the commit-eligible
    /// phases, so the commit stage scans only this prefix instead of
    /// probing the head every cycle. Maintained at the four `complete_at`
    /// write sites, clamped on squash, decremented on retire.
    done_prefix: usize,
}

impl RobSoa {
    fn new(rob_size: usize) -> RobSoa {
        let cap = rob_size.max(1).next_power_of_two();
        RobSoa {
            mask: cap - 1,
            head: 0,
            len: 0,
            head_seq: 0,
            slot: vec![Slot::EMPTY; cap],
            done_prefix: 0,
        }
    }

    /// Physical index of the in-flight slot `seq`.
    #[inline]
    fn idx(&self, seq: u64) -> usize {
        debug_assert!(
            seq >= self.head_seq && seq - self.head_seq < self.len as u64,
            "sequence {seq} is not in flight"
        );
        (self.head + (seq - self.head_seq) as usize) & self.mask
    }

    /// Physical index of the slot `offset` entries behind the head.
    #[inline]
    fn phys(&self, offset: usize) -> usize {
        (self.head + offset) & self.mask
    }

    /// Claims the tail slot; the caller fills every array at the returned
    /// physical index.
    #[inline]
    fn push_back(&mut self) -> usize {
        let i = self.phys(self.len);
        self.len += 1;
        i
    }

    /// Retires the head slot (only ever a done one, so the done prefix
    /// shortens by exactly the retired slot).
    #[inline]
    fn pop_front(&mut self) {
        debug_assert!(self.len > 0);
        debug_assert!(self.done_prefix > 0, "commit retires only done heads");
        self.head = (self.head + 1) & self.mask;
        self.len -= 1;
        self.head_seq += 1;
        self.done_prefix -= 1;
    }

    #[inline]
    fn has(&self, i: usize, flag: u8) -> bool {
        self.slot[i].flags & flag != 0
    }

    #[inline]
    fn set(&mut self, i: usize, flag: u8) {
        self.slot[i].flags |= flag;
    }

    #[inline]
    fn clear(&mut self, i: usize, flag: u8) {
        self.slot[i].flags &= !flag;
    }
}

/// Appointment-book ring capacity (power of two). Larger than any common
/// pipeline or memory latency, so the overflow heap stays cold.
const BOOK_WINDOW: usize = 256;

/// An O(1) appointment book: `(cycle, seq)` bookings within
/// [`BOOK_WINDOW`] cycles go to a timing ring (one slot of seqs per
/// cycle), farther ones to a small min-heap.
///
/// The ring stores no keys: a slot is drained *in full* at its cycle, so
/// everything in slot `c & (BOOK_WINDOW - 1)` at cycle `c` was booked for
/// exactly `c`. That only holds because the run loop visits every booked
/// cycle — each booking either coincides with an event-wheel wake-up
/// (producer completions, redirect penalties, squash floors are all
/// `sched`-ed at their source) or directly follows an active cycle, and
/// the fast-forward never skips either kind. A visited slot is drained
/// even when every entry in it has gone stale (the stage validates each
/// against `issue_q`/`mem_q`), so slots cannot alias `BOOK_WINDOW` cycles
/// later.
struct Book {
    ring: Vec<Vec<u64>>,
    overflow: BinaryHeap<Reverse<(u64, u64)>>,
    /// Entries physically stored (stale ones included) — a fast
    /// emptiness check for quiet cycles.
    pending: usize,
}

impl Book {
    fn new() -> Book {
        Book {
            ring: (0..BOOK_WINDOW).map(|_| Vec::new()).collect(),
            overflow: BinaryHeap::new(),
            pending: 0,
        }
    }

    #[inline]
    fn insert(&mut self, at: u64, now: u64, seq: u64) {
        debug_assert!(at > now, "appointments must be future");
        if at - now <= BOOK_WINDOW as u64 {
            self.ring[at as usize & (BOOK_WINDOW - 1)].push(seq);
        } else {
            self.overflow.push(Reverse((at, seq)));
        }
        self.pending += 1;
    }

    /// Whether any booking is due at `now` (assuming every earlier cycle's
    /// slot was already drained).
    #[inline]
    fn has_due(&self, now: u64) -> bool {
        self.pending != 0
            && (!self.ring[now as usize & (BOOK_WINDOW - 1)].is_empty()
                || matches!(self.overflow.peek(), Some(&Reverse((at, _))) if at <= now))
    }

    /// Moves every booking due at `now` into `out` as `(booked_at, seq)`
    /// pairs (ring entries are due exactly at `now` by the slot
    /// invariant).
    fn drain_due(&mut self, now: u64, out: &mut Vec<(u64, u64)>) {
        let slot = &mut self.ring[now as usize & (BOOK_WINDOW - 1)];
        self.pending -= slot.len();
        out.extend(slot.drain(..).map(|seq| (now, seq)));
        while let Some(&Reverse((at, seq))) = self.overflow.peek() {
            if at > now {
                break;
            }
            self.overflow.pop();
            self.pending -= 1;
            out.push((at, seq));
        }
    }
}

/// Hasher for the store index's block map. Keys are cache-block addresses
/// (tagged with the route bit), already well mixed by a single Fibonacci
/// multiply; SipHash would dominate the lookup cost on the memory-stage
/// hot path.
#[derive(Clone, Copy, Default)]
struct BlockHash(u64);

impl std::hash::Hasher for BlockHash {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

#[derive(Clone, Copy, Default)]
struct BlockHashBuilder;

impl std::hash::BuildHasher for BlockHashBuilder {
    type Hasher = BlockHash;

    #[inline]
    fn build_hasher(&self) -> BlockHash {
        BlockHash(0)
    }
}

/// The store index's map key: the 8-byte-aligned block address with the
/// route packed into the (always-zero) low bit, so the two ordering
/// domains never alias.
#[inline]
fn store_block_key(addr: u64, route: Route) -> u64 {
    (addr & !7)
        | match route {
            Route::DataCache => 0,
            Route::Lvc => 1,
        }
}

/// The outcome of replaying one shard segment through the machine model
/// (see [`TimingSim::run_segment_probed`]).
pub struct SegmentRun<P: Probe = NullProbe> {
    /// Cumulative statistics from run start through the end of this
    /// segment, presented finish-style (derived fields filled in). Because
    /// every counter is carried across the shard boundary, the *final*
    /// segment's stats are the whole run's stats — bit-identical to an
    /// unsharded replay.
    pub stats: SimStats,
    /// Serialized machine state at the segment boundary, to be passed as
    /// `resume` to the next shard; `None` on a final segment (the pipeline
    /// drained and finished instead of stopping).
    pub state: Option<Vec<u8>>,
    /// The probe, which observed only this segment's cycles; merging the
    /// per-segment recorders in shard order reproduces the serial run's
    /// probe output exactly.
    pub probe: P,
}

/// The timing simulator. Construct via [`TimingSim::run_program`] (the
/// usual entry point) or drive [`TimingSim::run_trace`] with a
/// pre-collected trace.
///
/// The simulator is monomorphized over its [`Probe`]: the default
/// [`NullProbe`] has `ENABLED == false`, so every observation-gathering
/// expression is statically dead and the un-instrumented pipeline compiles
/// to exactly the code it had before the probe layer existed. The
/// `*_probed` entry points thread any other probe (usually a
/// [`crate::Recorder`]) through the run and hand it back with the stats.
pub struct TimingSim<P: Probe = NullProbe> {
    config: MachineConfig,
    mem: MemSystem,
    arpt: Arpt,
    vpred: Option<StridePredictor>,
    stats: SimStats,

    cycle: u64,
    rob: RobSoa,
    next_seq: u64,
    /// Issue appointment book: `(cycle, seq)` pairs drained when due. A
    /// pair is live only while `rob.issue_q[seq]` still equals its cycle.
    issue_book: Book,
    /// Slots re-examined every cycle: issue-ready but starved of width or
    /// a functional unit, or holding a stale-early wake bound (squash).
    issue_retry: Vec<u64>,
    /// Persistent scratch for the issue candidate list.
    issue_cand: Vec<u64>,
    /// In-flight stores per queue, in program order (for ordering checks).
    lsq_stores: VecDeque<u64>,
    lvaq_stores: VecDeque<u64>,
    /// Store index, half one: DataCache-routed in-flight stores whose
    /// address generation has not finished, sorted by sequence. The
    /// conservative-LSQ check ("every older store's address is known")
    /// becomes a peek at the first element instead of a queue walk.
    dc_unknown: Vec<u64>,
    /// Store index, half two: youngest in-flight store per
    /// `(block, route)` key, chained older-ward through
    /// [`RobSoa::store_next`]. A load's match/forwarding scan touches only
    /// the stores that share its block instead of every older store.
    /// Rebuilt (not serialized) on state import; [`Self::load_block_cause`]
    /// keeps the original full scan as the probe-side living spec.
    store_blocks: HashMap<u64, u64, BlockHashBuilder>,
    lsq_count: usize,
    lvaq_count: usize,
    /// Per-register producer tracking (32 GPR + 32 FPR); `NO_SEQ` = none.
    reg_producer: [u64; 64],
    // Per-cycle FU usage.
    fu_used: [usize; 4],
    /// Committed stores awaiting their background cache write.
    write_buffer: VecDeque<(Route, u64)>,
    /// Pending ARPT soft errors (removed once injected); port-layer faults
    /// live inside [`MemSystem`]. While any are pending the event core
    /// falls back to cycle ticking, because injection triggers on ARPT
    /// *lookup counts* and skipped dispatch retries would desynchronize
    /// them.
    arpt_faults: Vec<TimingFault>,
    /// Future wake-up cycles.
    wheel: EventWheel,
    /// Memory-stage appointment book: `(cycle, seq)` pairs for scheduled
    /// wake-ups (address generation done, redirect penalty served, store
    /// data arrival). Live only while `rob.mem_q[seq]` matches.
    mem_book: Book,
    /// Persistent scratch for draining either book (no per-cycle
    /// allocation; the stages use it sequentially).
    due_scratch: Vec<(u64, u64)>,
    /// Memory slots re-examined every cycle: blocked on ordering, ports,
    /// MSHRs, or a full redirect target queue.
    mem_retry: Vec<u64>,
    /// Persistent scratch for the memory-stage action list (no per-cycle
    /// allocation).
    mem_scratch: Vec<u64>,
    probe: P,
}

impl TimingSim {
    /// Runs a linked program end-to-end on this machine model and returns
    /// the statistics. The functional simulator supplies the (perfect
    /// front end) instruction stream.
    ///
    /// # Panics
    ///
    /// Panics if the program fails functionally — workloads are
    /// deterministic, so that is a harness bug, not a timing condition.
    pub fn run_program(program: &Program, config: &MachineConfig) -> SimStats {
        TimingSim::run_program_probed(program, config, NullProbe).0
    }

    /// Runs any [`TraceSource`] — a live [`Machine`] or a trace replayer —
    /// through this machine model. The cycle-level behavior depends only on
    /// the entry stream, so a faithful replayer produces statistics
    /// bit-identical to live execution.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SourceError`] from the source.
    pub fn run_source<S: TraceSource>(
        source: &mut S,
        config: &MachineConfig,
    ) -> Result<SimStats, SourceError> {
        TimingSim::run_source_probed(source, config, NullProbe).map(|(stats, _)| stats)
    }

    /// Runs a pre-collected trace slice (useful for tests).
    pub fn run_trace(entries: &[TraceEntry], config: &MachineConfig) -> SimStats {
        TimingSim::run_trace_probed(entries, config, NullProbe).0
    }

    /// Replays one shard segment without a probe; see
    /// [`TimingSim::run_segment_probed`].
    ///
    /// # Errors
    ///
    /// Propagates source errors and rejects corrupt or mismatched resume
    /// state as [`SourceError::Corrupt`].
    pub fn run_segment<S: TraceSource>(
        source: &mut S,
        config: &MachineConfig,
        resume: Option<&[u8]>,
        final_segment: bool,
    ) -> Result<SegmentRun, SourceError> {
        TimingSim::run_segment_probed(source, config, resume, final_segment, NullProbe)
    }
}

impl<P: Probe> TimingSim<P> {
    fn new(config: &MachineConfig, probe: P) -> TimingSim<P> {
        TimingSim {
            mem: MemSystem::new(config),
            arpt: Arpt::new(
                arl_core::CounterScheme::OneBit,
                arl_core::Context::HYBRID_8_7,
                arl_core::Capacity::Entries(1 << config.arpt_log2_entries),
            ),
            vpred: config.value_prediction.then(StridePredictor::table4),
            stats: SimStats {
                config_name: config.name.clone(),
                ..SimStats::default()
            },
            cycle: 0,
            rob: RobSoa::new(config.rob_size),
            next_seq: 0,
            issue_book: Book::new(),
            issue_retry: Vec::new(),
            issue_cand: Vec::new(),
            lsq_stores: VecDeque::new(),
            lvaq_stores: VecDeque::new(),
            dc_unknown: Vec::new(),
            store_blocks: HashMap::with_hasher(BlockHashBuilder),
            lsq_count: 0,
            lvaq_count: 0,
            reg_producer: [NO_SEQ; 64],
            fu_used: [0; 4],
            write_buffer: VecDeque::new(),
            arpt_faults: config
                .faults
                .iter()
                .filter(|f| !f.is_port_fault())
                .copied()
                .collect(),
            wheel: EventWheel::new(),
            mem_book: Book::new(),
            mem_retry: Vec::new(),
            mem_scratch: Vec::new(),
            due_scratch: Vec::new(),
            config: config.clone(),
            probe,
        }
    }

    /// [`TimingSim::run_program`] with an attached probe; returns the probe
    /// alongside the statistics.
    ///
    /// # Panics
    ///
    /// Panics if the program fails functionally — workloads are
    /// deterministic, so that is a harness bug, not a timing condition.
    pub fn run_program_probed(
        program: &Program,
        config: &MachineConfig,
        probe: P,
    ) -> (SimStats, P) {
        let mut machine = Machine::new(program);
        TimingSim::run_source_probed(&mut machine, config, probe)
            .unwrap_or_else(|e| panic!("functional execution failed: {e}"))
    }

    /// [`TimingSim::run_source`] with an attached probe: the probe observes
    /// every simulated cycle and is returned alongside the statistics. The
    /// probe is pure observation — `SimStats` are identical with any probe
    /// attached.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SourceError`] from the source.
    pub fn run_source_probed<S: TraceSource>(
        source: &mut S,
        config: &MachineConfig,
        probe: P,
    ) -> Result<(SimStats, P), SourceError> {
        let run = TimingSim::run_segment_probed(source, config, None, true, probe)?;
        debug_assert!(run.state.is_none(), "a final segment leaves no state");
        Ok((run.stats, run.probe))
    }

    /// Replays one shard segment of a sharded run. `resume` is the state
    /// blob exported by the previous shard (`None` for the first); when
    /// `final_segment` is false, the run stops as soon as the source dries
    /// and returns the machine state for the next shard instead of
    /// draining the pipeline.
    ///
    /// The cut is *mid-cycle*: a segment's span runs out inside the
    /// dispatch loop, after commit, memory, stall attribution and issue
    /// already ran for that cycle. The exported state therefore carries
    /// those per-cycle locals (`MidCycle`) and the next shard resumes
    /// inside the very same cycle, continuing dispatch where its
    /// predecessor stopped. Chaining segments this way is bit-identical to
    /// one unsharded run — `tests/shard_differential.rs` pins this across
    /// the full workload suite. An unsharded run is simply
    /// `run_segment_probed(source, config, None, true, probe)`.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SourceError`] from the source, and rejects a
    /// corrupt, truncated, or configuration-mismatched `resume` blob as
    /// [`SourceError::Corrupt`].
    pub fn run_segment_probed<S: TraceSource>(
        source: &mut S,
        config: &MachineConfig,
        resume: Option<&[u8]>,
        final_segment: bool,
        probe: P,
    ) -> Result<SegmentRun<P>, SourceError> {
        if config.core == CoreMode::Legacy {
            // The escape hatch: the preserved pre-refactor cycle-ticking
            // core, bit-identical by the differential suite.
            return crate::legacy::LegacySim::run_segment_probed(
                source,
                config,
                resume,
                final_segment,
                probe,
            );
        }
        let mut sim = TimingSim::new(config, probe);
        let mut carried = match resume {
            Some(blob) => Some(sim.import_state(blob)?),
            None => None,
        };
        let mut pending: Option<TraceEntry> = None;
        let mut exhausted = false;
        loop {
            // A carried mid-cycle resumes *inside* the cycle the previous
            // shard stopped in: commit, memory, stall attribution and
            // issue already ran there, so only the dispatch loop (and
            // everything after it) executes for that cycle.
            let mut mid = match carried.take() {
                Some(m) => m,
                None => {
                    sim.begin_cycle();
                    let committed = sim.commit_stage();
                    let mem_active = sim.memory_stage();
                    // Attribute the stall after the memory stage so
                    // port/MSHR denials reflect this cycle's actual
                    // bandwidth claims, but before issue mutates the
                    // head's issued state.
                    let stall = if P::ENABLED && committed == 0 {
                        Some(sim.stall_cause())
                    } else {
                        None
                    };
                    let issued = sim.issue_stage();
                    MidCycle {
                        committed,
                        issued,
                        dispatched: 0,
                        mem_active,
                        stall,
                        // A failed dispatch bumps exactly one stall
                        // counter; the deltas are what a fast-forwarded
                        // span multiplies out.
                        rob_stalls_before: sim.stats.rob_stall_cycles,
                        queue_stalls_before: sim.stats.queue_stall_cycles,
                    }
                }
            };
            // Dispatch stage: pull from the source.
            while mid.dispatched < sim.config.issue_width {
                let entry = match pending.take() {
                    Some(e) => e,
                    None => match source.next_entry()? {
                        Some(e) => e,
                        None => {
                            exhausted = true;
                            break;
                        }
                    },
                };
                if sim.try_dispatch(&entry) {
                    mid.dispatched += 1;
                } else {
                    pending = Some(entry);
                    break;
                }
            }
            if exhausted && !final_segment {
                // The segment's span is spent: stop mid-cycle and hand the
                // machine to the next shard, which resumes inside this
                // very cycle with the next span's entries.
                debug_assert!(pending.is_none(), "a dry source cannot leave an entry");
                let state = sim.export_state(&mid);
                let mut stats = sim.stats_view();
                stats.peak_rss_bytes = source.metrics().peak_rss_bytes;
                return Ok(SegmentRun {
                    stats,
                    state: Some(state),
                    probe: sim.probe,
                });
            }
            let obs = if P::ENABLED {
                let (dcache_claims, lvc_claims) = sim.mem.claims_this_cycle();
                let o = CycleObs {
                    rob_occupancy: sim.rob.len,
                    issued: mid.issued,
                    committed: mid.committed,
                    lsq_depth: sim.lsq_count,
                    lvaq_depth: sim.lvaq_count,
                    dcache_claims,
                    lvc_claims,
                    stall: mid.stall,
                };
                sim.probe.record(&o);
                Some(o)
            } else {
                None
            };
            if exhausted && pending.is_none() && sim.rob.len == 0 && sim.write_buffer.is_empty() {
                break;
            }
            // Event core: this cycle changed nothing (and the replays of
            // it during the span cannot either), so jump to the eve of the
            // next scheduled wake-up, replaying the span's constant
            // per-cycle effects in bulk.
            if mid.committed == 0
                && mid.issued == 0
                && mid.dispatched == 0
                && !mid.mem_active
                && sim.arpt_faults.is_empty()
            {
                let rob_stall = sim.stats.rob_stall_cycles - mid.rob_stalls_before;
                let queue_stall = sim.stats.queue_stall_cycles - mid.queue_stalls_before;
                sim.fast_forward_idle(rob_stall, queue_stall, obs.as_ref());
            }
            debug_assert!(
                sim.cycle < 100 * sim.stats.instructions.max(1_000_000),
                "timing simulation is not making progress"
            );
        }
        let (mut stats, probe) = sim.finish();
        stats.peak_rss_bytes = source.metrics().peak_rss_bytes;
        Ok(SegmentRun {
            stats,
            state: None,
            probe,
        })
    }

    /// [`TimingSim::run_trace`] with an attached probe (useful for tests).
    pub fn run_trace_probed(
        entries: &[TraceEntry],
        config: &MachineConfig,
        probe: P,
    ) -> (SimStats, P) {
        let mut source = EntrySliceSource::new(entries);
        TimingSim::run_source_probed(&mut source, config, probe)
            .unwrap_or_else(|e| panic!("slice sources cannot fail: {e}"))
    }

    /// The statistics as they stand right now, presented finish-style:
    /// live counters plus every derived field (cycle count, cache stats,
    /// value-prediction totals, triggered faults). `finish` is exactly this
    /// view at drain time; a segment boundary uses it mid-run.
    fn stats_view(&self) -> SimStats {
        let mut stats = self.stats.clone();
        stats.cycles = self.cycle;
        stats.dcache = self.mem.dcache_stats();
        stats.lvc = self.mem.lvc_stats();
        stats.l2 = self.mem.l2_stats();
        stats.stacked = self.mem.stacked_stats();
        stats.steer_fallbacks = self.mem.steer_fallbacks();
        if let Some(vp) = &self.vpred {
            stats.value_predictions = vp.predictions();
            stats.value_pred_correct = (vp.accuracy() * vp.predictions() as f64).round() as u64;
        }
        stats
            .faults_applied
            .extend_from_slice(self.mem.faults_triggered());
        stats.faults_applied.sort_unstable();
        stats.faults_applied.dedup();
        stats
    }

    fn finish(self) -> (SimStats, P) {
        (self.stats_view(), self.probe)
    }

    // ---- segment-boundary state (sharded replay) ----------------------------

    /// Serializes the complete machine state at a mid-cycle segment
    /// boundary into a sealed blob (see `crate::state` for the framing).
    /// Everything a resumed [`TimingSim::run_segment_probed`] loop can
    /// observe is captured: the ROB (every SoA column), renamer, ordering
    /// queues, write buffer, predictors, memory system, event wheel, the
    /// appointment-book bookings (via each slot's `issue_q`/`mem_q` key),
    /// and the [`MidCycle`] locals of the cut cycle itself.
    fn export_state(&self, mid: &MidCycle) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.bytes(&STATE_MAGIC);
        w.u8(STATE_VERSION);
        w.u8(CORE_EVENT);
        let name = self.config.name.as_bytes();
        w.u32(name.len() as u32);
        w.bytes(name);
        mid.write(&mut w);
        // Shared section (same order in both cores).
        w.u64(self.cycle);
        write_stats(&mut w, &self.stats);
        for &p in &self.reg_producer {
            w.u64(p);
        }
        for &n in &self.fu_used {
            w.usize(n);
        }
        w.usize(self.lsq_count);
        w.usize(self.lvaq_count);
        w.u64_list(&self.lsq_stores.iter().copied().collect::<Vec<_>>());
        w.u64_list(&self.lvaq_stores.iter().copied().collect::<Vec<_>>());
        w.u32(self.write_buffer.len() as u32);
        for &(route, addr) in &self.write_buffer {
            w.u8(route_tag(route));
            w.u64(addr);
        }
        w.u32(self.arpt_faults.len() as u32);
        for f in &self.arpt_faults {
            w.u32(f.id);
        }
        match &self.vpred {
            Some(vp) => {
                w.u8(1);
                vp.write_state(&mut w);
            }
            None => w.u8(0),
        }
        write_arpt(&mut w, &self.arpt);
        self.mem.write_state(&mut w);
        // Event-core section: the SoA window in sequence order plus the
        // wheel's pending wake-ups. The appointment books are *not* stored
        // — each slot's `issue_q`/`mem_q` key is the authoritative copy
        // (stale book entries are dropped on drain anyway), so import
        // re-books from the keys.
        w.u64(self.rob.head_seq);
        w.u64(self.next_seq);
        w.u32(self.rob.len as u32);
        for k in 0..self.rob.len {
            let i = self.rob.phys(k);
            w.u64(self.rob.slot[i].dispatch_cycle);
            for &d in &self.rob.slot[i].deps {
                w.u64(d);
            }
            w.u64(self.rob.slot[i].data_dep);
            w.u8(self.rob.slot[i].fu as u8);
            w.u64(self.rob.slot[i].latency);
            w.u64(self.rob.slot[i].complete_at);
            w.u8(phase_tag(self.rob.slot[i].mem));
            w.u64(self.rob.slot[i].addr);
            w.u8(route_tag(self.rob.slot[i].route));
            w.u64(self.rob.slot[i].mem_ready_at);
            w.u64(self.rob.slot[i].agen_done_at);
            w.u8(self.rob.slot[i].flags);
            w.u64(self.rob.slot[i].arpt_key);
            w.u64(self.rob.slot[i].earliest_try);
            w.u8(self.rob.slot[i].unknown_deps);
            w.u64(self.rob.slot[i].wake_head);
            for &x in &self.rob.slot[i].wake_next {
                w.u64(x);
            }
            for &r in &self.rob.slot[i].claimed {
                w.u8(r);
            }
            w.u64(self.rob.slot[i].issue_q);
            w.u64(self.rob.slot[i].mem_q);
        }
        w.u64_list(&self.wheel.pending());
        w.seal()
    }

    /// Restores a blob produced by [`TimingSim::export_state`] into this
    /// freshly constructed simulator and returns the carried [`MidCycle`].
    /// Decoding is strict: any mismatch against this simulator's
    /// configuration (name, core, ROB capacity, predictor presence, cache
    /// geometry, fault plan) or any internally inconsistent field (stale
    /// appointment, sequence-count mismatch, trailing bytes) is a
    /// [`SourceError::Corrupt`].
    fn import_state(&mut self, blob: &[u8]) -> Result<MidCycle, SourceError> {
        let mut r = StateReader::open(blob)?;
        if r.bytes(4)? != STATE_MAGIC {
            return Err(corrupt("bad magic"));
        }
        if r.u8()? != STATE_VERSION {
            return Err(corrupt("unsupported version"));
        }
        if r.u8()? != CORE_EVENT {
            return Err(corrupt("state was captured by a different core"));
        }
        let name_len = r.len32()?;
        if r.bytes(name_len)? != self.config.name.as_bytes() {
            return Err(corrupt("configuration mismatch"));
        }
        let mid = MidCycle::read(&mut r)?;
        // Shared section.
        self.cycle = r.u64()?;
        read_stats(&mut r, &mut self.stats)?;
        for p in &mut self.reg_producer {
            *p = r.u64()?;
        }
        for n in &mut self.fu_used {
            *n = r.usize()?;
        }
        self.lsq_count = r.usize()?;
        self.lvaq_count = r.usize()?;
        self.lsq_stores = r.u64_list()?.into();
        self.lvaq_stores = r.u64_list()?.into();
        self.write_buffer.clear();
        for _ in 0..r.len32()? {
            let route = route_from(r.u8()?)?;
            let addr = r.u64()?;
            self.write_buffer.push_back((route, addr));
        }
        // Pending ARPT faults are stored as ids and rebuilt from the
        // configuration's fault plan, preserving its order.
        let n_faults = r.len32()?;
        let mut fault_ids = Vec::with_capacity(n_faults.min(1024));
        for _ in 0..n_faults {
            fault_ids.push(r.u32()?);
        }
        self.arpt_faults = self
            .config
            .faults
            .iter()
            .filter(|f| !f.is_port_fault() && fault_ids.contains(&f.id))
            .copied()
            .collect();
        if self.arpt_faults.len() != n_faults {
            return Err(corrupt("pending fault not in the configuration"));
        }
        if r.bool()? != self.vpred.is_some() {
            return Err(corrupt("value-predictor presence mismatch"));
        }
        if let Some(vp) = &mut self.vpred {
            vp.read_state(&mut r)?;
        }
        read_arpt(&mut r, &mut self.arpt)?;
        self.mem.read_state(&mut r)?;
        // Event-core section.
        let head_seq = r.u64()?;
        let next_seq = r.u64()?;
        let rob_len = r.len32()?;
        if rob_len > self.config.rob_size {
            return Err(corrupt("ROB length exceeds capacity"));
        }
        let expect_next = head_seq
            .checked_add(rob_len as u64)
            .ok_or_else(|| corrupt("sequence overflow"))?;
        if next_seq != expect_next {
            return Err(corrupt("sequence numbering is inconsistent"));
        }
        self.rob.head_seq = head_seq;
        self.next_seq = next_seq;
        for _ in 0..rob_len {
            let i = self.rob.push_back();
            self.rob.slot[i].dispatch_cycle = r.u64()?;
            for d in &mut self.rob.slot[i].deps {
                *d = r.u64()?;
            }
            self.rob.slot[i].data_dep = r.u64()?;
            self.rob.slot[i].fu = fu_from(r.u8()?)?;
            self.rob.slot[i].latency = r.u64()?;
            self.rob.slot[i].complete_at = r.u64()?;
            self.rob.slot[i].mem = phase_from(r.u8()?)?;
            self.rob.slot[i].addr = r.u64()?;
            self.rob.slot[i].route = route_from(r.u8()?)?;
            self.rob.slot[i].mem_ready_at = r.u64()?;
            self.rob.slot[i].agen_done_at = r.u64()?;
            self.rob.slot[i].flags = r.u8()?;
            self.rob.slot[i].arpt_key = r.u64()?;
            self.rob.slot[i].earliest_try = r.u64()?;
            self.rob.slot[i].unknown_deps = r.u8()?;
            self.rob.slot[i].wake_head = r.u64()?;
            for x in &mut self.rob.slot[i].wake_next {
                *x = r.u64()?;
            }
            for c in &mut self.rob.slot[i].claimed {
                *c = r.u8()?;
            }
            self.rob.slot[i].issue_q = r.u64()?;
            self.rob.slot[i].mem_q = r.u64()?;
        }
        // Re-book the appointment books from each slot's authoritative
        // queue key. Every live booking is strictly future at a cut (every
        // insert site books at `cycle + 1` or later, and due bookings were
        // drained at their cycle), so a stale one means corruption. Retry
        // lists rebuild in sequence order — the order the drain loop left
        // them in, since candidates are processed sorted.
        for k in 0..self.rob.len {
            let seq = self.rob.head_seq + k as u64;
            let i = self.rob.phys(k);
            // The derived structures are not serialized; rebuild them.
            // `stale` is conservatively true (the issue fast path re-proves
            // its invariant on first touch), the done prefix recomputes
            // from the completion column, and the store index re-links from
            // the SoA (oldest-first push-head leaves the youngest store at
            // each chain head, exactly as incremental maintenance does).
            self.rob.slot[i].stale = true;
            if self.rob.done_prefix == k && self.rob.slot[i].complete_at != NO_CYCLE {
                self.rob.done_prefix = k + 1;
            }
            if self.rob.slot[i].mem != MemPhase::None && !self.rob.has(i, F_IS_LOAD) {
                let route = self.rob.slot[i].route;
                self.link_store_block(seq, route, self.rob.slot[i].addr);
                if route == Route::DataCache && self.rob.slot[i].agen_done_at == NO_CYCLE {
                    self.dc_unknown.push(seq);
                }
            }
            match self.rob.slot[i].issue_q {
                QUEUE_NONE => {}
                QUEUE_RETRY => self.issue_retry.push(seq),
                at if at > self.cycle => self.issue_book.insert(at, self.cycle, seq),
                _ => return Err(corrupt("stale issue appointment")),
            }
            match self.rob.slot[i].mem_q {
                QUEUE_NONE => {}
                QUEUE_RETRY => self.mem_retry.push(seq),
                at if at > self.cycle => self.mem_book.insert(at, self.cycle, seq),
                _ => return Err(corrupt("stale memory appointment")),
            }
        }
        self.wheel.advance_to(self.cycle);
        for at in r.u64_list()? {
            if at <= self.cycle {
                return Err(corrupt("stale wheel event"));
            }
            self.wheel.schedule(at);
        }
        r.finish()?;
        Ok(mid)
    }

    fn begin_cycle(&mut self) {
        self.cycle += 1;
        self.mem.new_cycle();
        self.fu_used = [0; 4];
        self.wheel.advance_to(self.cycle);
    }

    /// Schedules a future wake-up on the event wheel. Called on every
    /// write of a cycle threshold that can turn a blocked machine state
    /// back into an actionable one.
    #[inline]
    fn sched(&mut self, at: u64) {
        self.wheel.schedule(at);
    }

    /// Jumps from an executed no-op cycle to the eve of the next scheduled
    /// event, replaying the span's constant per-cycle effects in bulk:
    /// dispatch-stall counters multiply out, and the probe receives the
    /// no-op cycle's observation once per skipped cycle (exactly, via
    /// [`Probe::record_span`]).
    fn fast_forward_idle(&mut self, rob_stall: u64, queue_stall: u64, obs: Option<&CycleObs>) {
        let next = match (self.wheel.upcoming(), self.mem.next_event_after(self.cycle)) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => return,
        };
        debug_assert!(next > self.cycle, "events behind the clock must retire");
        let span = next - self.cycle - 1;
        if span == 0 {
            return;
        }
        self.stats.rob_stall_cycles += rob_stall * span;
        self.stats.queue_stall_cycles += queue_stall * span;
        if P::ENABLED {
            if let Some(obs) = obs {
                self.probe.record_span(obs, span);
            }
        }
        self.cycle += span;
        self.mem.fast_forward(self.cycle);
        self.wheel.advance_to(self.cycle);
    }

    /// When (if ever yet known) the value produced by `seq` is usable.
    fn producer_ready_at(&self, seq: u64) -> u64 {
        if seq < self.rob.head_seq {
            return 0; // already committed
        }
        let i = self.rob.idx(seq);
        if self.rob.has(i, F_VALUE_PRED) {
            // Consumers may use the predicted value the cycle after the
            // producer dispatched.
            return self.rob.slot[i].dispatch_cycle + 1;
        }
        self.rob.slot[i].complete_at // NO_CYCLE until issued
    }

    fn deps_ready(&self, i: usize) -> bool {
        self.rob.slot[i].deps.iter().all(|&dep| {
            dep == NO_SEQ || {
                let ready = self.producer_ready_at(dep);
                ready != NO_CYCLE && ready <= self.cycle
            }
        })
    }

    /// Books an issue-stage appointment for `seq` at cycle `at`.
    ///
    /// Neither book schedules a wheel event of its own: every booked cycle
    /// is already covered — `cycle + 1` bookings follow an active cycle
    /// (never fast-forwarded from), and every future component of a booked
    /// time (a producer's `done_at`, a redirect penalty's served cycle, a
    /// squash floor) is `sched`-ed where it is computed. The [`Book`] ring
    /// invariant rests on this coverage.
    #[inline]
    fn queue_issue(&mut self, seq: u64, at: u64) {
        let i = self.rob.idx(seq);
        self.rob.slot[i].issue_q = at;
        self.issue_book.insert(at, self.cycle, seq);
    }

    /// Books a memory-stage appointment for `seq` at cycle `at`. See
    /// [`TimingSim::queue_issue`] for why no wheel event is scheduled.
    #[inline]
    fn queue_mem(&mut self, seq: u64, at: u64) {
        let i = self.rob.idx(seq);
        self.rob.slot[i].mem_q = at;
        self.mem_book.insert(at, self.cycle, seq);
    }

    /// Pushes store `seq` at the head of its `(block, route)` chain.
    fn link_store_block(&mut self, seq: u64, route: Route, addr: u64) {
        let key = store_block_key(addr, route);
        let i = self.rob.idx(seq);
        match self.store_blocks.insert(key, seq) {
            Some(prev) => self.rob.slot[i].store_next = prev,
            None => self.rob.slot[i].store_next = NO_SEQ,
        }
    }

    /// Unlinks store `seq` from its `(block, route)` chain (route change at
    /// verification, or retirement at commit). Chains hold only the stores
    /// of one block, so the predecessor walk is a handful of hops at most.
    fn unlink_store_block(&mut self, seq: u64, route: Route, addr: u64) {
        let key = store_block_key(addr, route);
        let next = self.rob.slot[self.rob.idx(seq)].store_next;
        let Some(&head) = self.store_blocks.get(&key) else {
            debug_assert!(false, "store {seq} missing from its block chain");
            return;
        };
        if head == seq {
            if next == NO_SEQ {
                self.store_blocks.remove(&key);
            } else {
                self.store_blocks.insert(key, next);
            }
            return;
        }
        let mut cur = head;
        loop {
            let ci = self.rob.idx(cur);
            let n = self.rob.slot[ci].store_next;
            debug_assert_ne!(n, NO_SEQ, "store {seq} missing from its block chain");
            if n == seq {
                self.rob.slot[ci].store_next = next;
                return;
            }
            cur = n;
        }
    }

    /// Slot `seq` just gained a known completion cycle: extend the done
    /// prefix if it is the next slot in line (and absorb any already-done
    /// run behind it). Each slot enters the prefix once per completion, so
    /// the total extension work is bounded by the completions themselves.
    #[inline]
    fn note_complete(&mut self, seq: u64) {
        let rob = &mut self.rob;
        if seq != rob.head_seq + rob.done_prefix as u64 {
            return;
        }
        let mut p = rob.done_prefix;
        while p < rob.len && rob.slot[rob.phys(p)].complete_at != NO_CYCLE {
            p += 1;
        }
        rob.done_prefix = p;
    }

    /// Producer slot `i` just learned its completion cycle: wake every
    /// consumer registered on its list. Register consumers (`dep_index`
    /// 0–2) drop their unknown-producer count, raise their issue bound to
    /// `ready_at`, and enter the issue book once no unknowns remain;
    /// store-data consumers (`dep_index` 3) re-enter the memory book.
    /// Fired registrations are consumed; a squash that later revokes this
    /// completion leaves the consumers' bounds stale-early, which only
    /// costs re-checks (the authoritative checks still gate).
    #[inline]
    fn fire_wakes(&mut self, i: usize, ready_at: u64) {
        let mut h = self.rob.slot[i].wake_head;
        if h == NO_SEQ {
            return;
        }
        self.rob.slot[i].wake_head = NO_SEQ;
        while h != NO_SEQ {
            let seq = h >> 2;
            let k = (h & 3) as usize;
            let c = self.rob.idx(seq);
            h = self.rob.slot[c].wake_next[k];
            if k == 3 {
                // Store data arrival: the memory stage completes the store
                // once it is both redirect-served and data-ready.
                self.rob.clear(c, F_DATA_WAKE);
                if self.rob.slot[c].mem == MemPhase::Ready
                    && self.rob.slot[c].complete_at == NO_CYCLE
                {
                    let at = ready_at.max(self.rob.slot[c].mem_ready_at);
                    self.queue_mem(seq, at);
                }
                continue;
            }
            self.rob.slot[c].unknown_deps -= 1;
            if ready_at > self.rob.slot[c].earliest_try {
                self.rob.slot[c].earliest_try = ready_at;
            }
            if self.rob.slot[c].unknown_deps == 0 {
                let at = self.rob.slot[c].earliest_try;
                self.queue_issue(seq, at);
            }
        }
    }

    // ---- dispatch ---------------------------------------------------------

    fn try_dispatch(&mut self, entry: &TraceEntry) -> bool {
        if self.rob.len >= self.config.rob_size {
            self.stats.rob_stall_cycles += 1;
            return false;
        }
        // Memory instructions need a queue entry; pick the queue now (the
        // paper's dispatch-stage steering). A compiled trace (v3) carries
        // the steering class and ARPT key precomputed; the live path
        // derives both from the instruction. Either way the same key is
        // folded, the same table consulted and trained, and the same
        // lookup counted, so the prediction stream is bit-identical.
        let hints = &entry.model;
        let mut route = Route::DataCache;
        let mut predicted_stack = false;
        let mut arpt_predicted = false;
        let mut arpt_key = 0u64;
        let is_mem = entry.mem.is_some();
        if is_mem {
            if self.config.is_decoupled() {
                let hint = if hints.present {
                    match hints.steer {
                        ModelHints::STEER_STACK => StaticHint::Stack,
                        ModelHints::STEER_NONSTACK => StaticHint::NonStack,
                        _ => StaticHint::Dynamic,
                    }
                } else {
                    let Some(info) = entry.inst.mem_op() else {
                        unreachable!("memory entry carries no mem_op");
                    };
                    static_hint(&info)
                };
                predicted_stack = match hint {
                    StaticHint::Stack => true,
                    StaticHint::NonStack => false,
                    StaticHint::Dynamic => {
                        arpt_predicted = true;
                        arpt_key = if hints.present {
                            hints.arpt_key
                        } else {
                            self.arpt.key(entry.pc, entry.ghr, entry.ra)
                        };
                        if !self.arpt_faults.is_empty() {
                            self.apply_arpt_faults();
                        }
                        self.arpt.predict_counted_key(arpt_key)
                    }
                };
                route = if predicted_stack {
                    Route::Lvc
                } else {
                    Route::DataCache
                };
                let (count, cap) = match route {
                    Route::Lvc => (self.lvaq_count, self.config.lvaq_size),
                    Route::DataCache => (self.lsq_count, self.config.lsq_size),
                };
                if count >= cap {
                    self.stats.queue_stall_cycles += 1;
                    return false;
                }
            } else if self.lsq_count >= self.config.lsq_size {
                self.stats.queue_stall_cycles += 1;
                return false;
            }
        }

        let seq = self.next_seq;
        self.next_seq += 1;

        // Resolve sources against the renamer state. Store-data operands
        // are tracked separately from address operands. Compiled hints
        // carry the unified operand indices precomputed
        // (`arl_core::model_srcs` is the shared definition both paths
        // follow); the live path extracts them from the instruction.
        let mut deps: [u64; 3] = [NO_SEQ; 3];
        let mut data_dep: u64 = NO_SEQ;
        if hints.present {
            for (k, &src) in hints.srcs.iter().enumerate() {
                if src != NO_SRC {
                    deps[k] = self.reg_producer[src as usize];
                }
            }
            if hints.data_src != NO_SRC {
                data_dep = self.reg_producer[hints.data_src as usize];
            }
        } else {
            let mut n = 0;
            match entry.inst {
                arl_isa::Inst::Store { rs, base, .. } => {
                    if base != arl_isa::Gpr::ZERO {
                        deps[0] = self.reg_producer[base.index()];
                    }
                    if rs != arl_isa::Gpr::ZERO {
                        data_dep = self.reg_producer[rs.index()];
                    }
                }
                arl_isa::Inst::FStore { fs, base, .. } => {
                    if base != arl_isa::Gpr::ZERO {
                        deps[0] = self.reg_producer[base.index()];
                    }
                    data_dep = self.reg_producer[32 + fs.index()];
                }
                _ => {
                    let mut gprs = [arl_isa::Gpr::ZERO; 2];
                    let ng = entry.inst.gpr_sources_into(&mut gprs);
                    for &r in &gprs[..ng] {
                        deps[n] = self.reg_producer[r.index()];
                        n += 1;
                    }
                    let mut fprs = [arl_isa::Fpr::new(0); 2];
                    let nf = entry.inst.fpr_sources_into(&mut fprs);
                    for &r in &fprs[..nf] {
                        if n < 3 {
                            deps[n] = self.reg_producer[32 + r.index()];
                            n += 1;
                        }
                    }
                }
            }
        }

        // Value prediction on the destination register.
        let mut value_predicted = false;
        if let (Some(vp), Some((_, actual))) = (self.vpred.as_mut(), entry.gpr_write) {
            value_predicted = vp.update(entry.pc, actual);
        }

        // Claim the renamer for the destination, remembering the claims so
        // commit can release exactly them.
        let mut claimed = [NO_REG; 2];
        if let Some((rd, _)) = entry.gpr_write {
            self.reg_producer[rd.index()] = seq;
            claimed[0] = rd.index() as u8;
        }
        let fpr_dest = if hints.present {
            hints.fpr_dest
        } else {
            arl_core::fpr_dest_index(&entry.inst)
        };
        if fpr_dest != NO_SRC {
            self.reg_producer[fpr_dest as usize] = seq;
            claimed[1] = fpr_dest;
        }

        let (fu, latency) = if hints.present {
            let class = FuClass::from_tag(hints.fu).unwrap_or(FuClass::IntAlu);
            (fu_of_class(class), u64::from(hints.latency))
        } else {
            classify(&entry.inst)
        };
        debug_assert_eq!((fu, latency), classify(&entry.inst));
        let (is_load, addr, is_stack) = match entry.mem {
            Some(m) => (m.is_load, m.addr, m.is_stack()),
            None => (false, 0, false),
        };
        if is_mem {
            match route {
                Route::Lvc => {
                    self.lvaq_count += 1;
                    self.stats.lvaq_refs += 1;
                    if !is_load {
                        self.lvaq_stores.push_back(seq);
                    }
                }
                Route::DataCache => {
                    self.lsq_count += 1;
                    if !is_load {
                        self.lsq_stores.push_back(seq);
                    }
                }
            }
            self.stats.mem_refs += 1;
        }
        self.stats.instructions += 1;

        let i = self.rob.push_back();
        self.rob.slot[i].dispatch_cycle = self.cycle;
        self.rob.slot[i].deps = deps;
        self.rob.slot[i].data_dep = data_dep;
        self.rob.slot[i].fu = fu;
        self.rob.slot[i].latency = latency;
        self.rob.slot[i].complete_at = NO_CYCLE;
        self.rob.slot[i].mem = if is_mem {
            MemPhase::WaitAgen
        } else {
            MemPhase::None
        };
        self.rob.slot[i].addr = addr;
        self.rob.slot[i].route = route;
        self.rob.slot[i].mem_ready_at = 0;
        self.rob.slot[i].agen_done_at = NO_CYCLE;
        let mut flags = 0u8;
        if value_predicted {
            flags |= F_VALUE_PRED;
        }
        if is_load {
            flags |= F_IS_LOAD;
        }
        if is_stack {
            flags |= F_IS_STACK;
        }
        if arpt_predicted {
            flags |= F_ARPT_PRED;
        }
        self.rob.slot[i].flags = flags;
        self.rob.slot[i].arpt_key = arpt_key;
        self.rob.slot[i].stale = false;
        self.rob.slot[i].claimed = claimed;
        self.rob.slot[i].mem_q = QUEUE_NONE; // agen issue books the appointment
        if is_mem && !is_load {
            // Store-index maintenance: link into the (block, route) chain;
            // a DataCache store's address is unknown until its agen issues.
            self.link_store_block(seq, route, addr);
            if route == Route::DataCache {
                debug_assert!(self.dc_unknown.last().is_none_or(|&s| s < seq));
                self.dc_unknown.push(seq);
            }
        }
        // Issue-wakeup bookkeeping: compute a provable lower bound on the
        // first cycle the issue check could pass, and register on any
        // producer whose completion cycle is not yet known. The slot's own
        // wake list must be empty here — producers fire (complete) before
        // they commit, so a reused slot's list was drained.
        self.rob.slot[i].wake_head = NO_SEQ;
        self.rob.slot[i].wake_next = [NO_SEQ; 4];
        let mut earliest = self.cycle + 1; // issue needs dispatch_cycle < cycle
        let mut unknown = 0u8;
        for (k, &dep) in deps.iter().enumerate() {
            if dep == NO_SEQ || dep < self.rob.head_seq {
                continue; // no producer, or already committed (ready at 0)
            }
            let j = self.rob.idx(dep);
            if self.rob.has(j, F_VALUE_PRED) {
                earliest = earliest.max(self.rob.slot[j].dispatch_cycle + 1);
            } else if self.rob.slot[j].complete_at != NO_CYCLE {
                earliest = earliest.max(self.rob.slot[j].complete_at);
            } else {
                self.rob.slot[i].wake_next[k] = self.rob.slot[j].wake_head;
                self.rob.slot[j].wake_head = (seq << 2) | k as u64;
                unknown += 1;
            }
        }
        self.rob.slot[i].earliest_try = earliest;
        self.rob.slot[i].unknown_deps = unknown;
        if unknown == 0 {
            self.queue_issue(seq, earliest);
        } else {
            self.rob.slot[i].issue_q = QUEUE_NONE; // parked until the last wake
        }
        let _ = predicted_stack;
        true
    }

    /// Injects any pending ARPT soft errors whose trigger lookup has been
    /// reached (called just before a counted lookup, so `at_lookup == n`
    /// corrupts the table the `n`-th lookup reads).
    fn apply_arpt_faults(&mut self) {
        let next_lookup = self.arpt.lookups() + 1;
        let mut i = 0;
        while i < self.arpt_faults.len() {
            let fault = self.arpt_faults[i];
            match fault.kind {
                FaultKind::ArptSoftError {
                    slot,
                    mask,
                    at_lookup,
                } if at_lookup <= next_lookup => {
                    self.arpt.inject_soft_error(slot, mask);
                    self.stats.faults_applied.push(fault.id);
                    self.arpt_faults.remove(i);
                }
                _ => i += 1,
            }
        }
    }

    // ---- issue ------------------------------------------------------------

    fn issue_stage(&mut self) -> usize {
        // Gather this cycle's candidates: due appointments plus the
        // every-cycle retry list. Stale book copies (the slot was
        // re-appointed by a squash, issued, or committed) drop out here.
        let cycle = self.cycle;
        if self.issue_retry.is_empty() && !self.issue_book.has_due(cycle) {
            return 0;
        }
        let mut cand = std::mem::take(&mut self.issue_cand);
        cand.clear();
        let mut due = std::mem::take(&mut self.due_scratch);
        due.clear();
        self.issue_book.drain_due(cycle, &mut due);
        for &(at, seq) in &due {
            if seq >= self.rob.head_seq && self.rob.slot[self.rob.idx(seq)].issue_q == at {
                cand.push(seq);
            }
        }
        self.due_scratch = due;
        for n in 0..self.issue_retry.len() {
            let seq = self.issue_retry[n];
            if seq >= self.rob.head_seq && self.rob.slot[self.rob.idx(seq)].issue_q == QUEUE_RETRY {
                cand.push(seq);
            }
        }
        self.issue_retry.clear();
        // The authoritative walk is in program order, exactly the order
        // the legacy core examines ready entries in.
        cand.sort_unstable();
        cand.dedup();
        let mut issued = 0;
        let width = self.config.issue_width;
        for &seq in &cand {
            let i = self.rob.idx(seq);
            debug_assert_eq!(self.rob.slot[i].unknown_deps, 0);
            debug_assert!(self.rob.slot[i].earliest_try <= cycle);
            if issued < width {
                let fu = self.rob.slot[i].fu;
                // Ready re-verification is only needed on slots a squash
                // has touched (or freshly imported state): everywhere else
                // the booked cycle's bound is a proof — completions are
                // only ever revoked by squashing the producer, and a
                // consumer is younger than its producer, so it was
                // squash-marked too. Clear the mark once re-proven.
                let ready = if self.rob.slot[i].stale {
                    let ok = self.rob.slot[i].dispatch_cycle < cycle && self.deps_ready(i);
                    if ok {
                        self.rob.slot[i].stale = false;
                    }
                    ok
                } else {
                    debug_assert!(self.rob.slot[i].dispatch_cycle < cycle);
                    debug_assert!(self.deps_ready(i));
                    true
                };
                let fu_idx = fu as usize;
                let fu_cap = match fu {
                    Fu::IntAlu => self.config.int_alus,
                    Fu::FpAlu => self.config.fp_alus,
                    Fu::IntMulDiv => self.config.int_mul_div,
                    Fu::FpMulDiv => self.config.fp_mul_div,
                };
                if ready && self.fu_used[fu_idx] < fu_cap {
                    self.fu_used[fu_idx] += 1;
                    issued += 1;
                    let done_at = cycle + self.rob.slot[i].latency;
                    self.rob.set(i, F_ISSUED);
                    self.rob.slot[i].issue_q = QUEUE_NONE;
                    if self.rob.slot[i].mem == MemPhase::WaitAgen {
                        // Address generation completes next cycle; the
                        // memory stage takes over. Completion is still
                        // unknown — consumers stay registered until the
                        // access starts.
                        self.rob.slot[i].agen_done_at = done_at;
                        self.rob.slot[i].complete_at = NO_CYCLE;
                        if !self.rob.has(i, F_IS_LOAD) && self.rob.slot[i].route == Route::DataCache
                        {
                            // The store's address is now (as of `done_at`,
                            // observed next memory stage) known.
                            if let Ok(p) = self.dc_unknown.binary_search(&seq) {
                                self.dc_unknown.remove(p);
                            } else {
                                debug_assert!(false, "issuing DataCache store {seq} untracked");
                            }
                        }
                        self.queue_mem(seq, done_at);
                    } else {
                        self.rob.slot[i].complete_at = done_at;
                        self.note_complete(seq);
                        self.fire_wakes(i, done_at);
                    }
                    self.sched(done_at);
                    continue;
                }
            }
            // Starved of width or a functional unit, or the wake bound was
            // stale-early (a squash revoked a producer's completion):
            // re-examine every cycle, as the legacy walk does.
            self.rob.slot[i].issue_q = QUEUE_RETRY;
            self.issue_retry.push(seq);
        }
        self.issue_cand = cand;
        issued
    }

    // ---- memory stage -------------------------------------------------------

    /// Runs the memory stage; returns whether it changed any machine state
    /// (the event core may only fast-forward cycles where it did not).
    fn memory_stage(&mut self) -> bool {
        let mut active = false;
        // Drain the write buffer: committed stores write the cache in the
        // background as bandwidth allows.
        while let Some(&(route, addr)) = self.write_buffer.front() {
            if !self.mem.port_available(route, addr) {
                break;
            }
            if self.mem.access(route, addr).is_none() {
                break; // no MSHR for the write miss; retry next cycle
            }
            self.write_buffer.pop_front();
            active = true;
        }
        let cycle = self.cycle;
        if self.mem_retry.is_empty() && !self.mem_book.has_due(cycle) {
            return active; // no appointment due this cycle
        }
        // Gather this cycle's work: due appointments (address generation
        // done, redirect penalty served, store data arrived) plus the
        // every-cycle retry list (ordering/port/MSHR blocked). Stale book
        // copies drop out; the survivors are processed oldest-first,
        // exactly the program-order walk the legacy core does. (Stores
        // access the cache at commit.)
        let mut actions = std::mem::take(&mut self.mem_scratch);
        actions.clear();
        let mut due = std::mem::take(&mut self.due_scratch);
        due.clear();
        self.mem_book.drain_due(cycle, &mut due);
        for &(at, seq) in &due {
            if seq >= self.rob.head_seq && self.rob.slot[self.rob.idx(seq)].mem_q == at {
                actions.push(seq);
            }
        }
        self.due_scratch = due;
        for n in 0..self.mem_retry.len() {
            let seq = self.mem_retry[n];
            if seq >= self.rob.head_seq && self.rob.slot[self.rob.idx(seq)].mem_q == QUEUE_RETRY {
                actions.push(seq);
            }
        }
        self.mem_retry.clear();
        actions.sort_unstable();
        actions.dedup();
        for &seq in &actions {
            let i = self.rob.idx(seq);
            // 1. Verification (TLB stack-bit check) the cycle address
            //    generation finishes. (A squash may have reset a later
            //    action candidate back to pre-agen state mid-pass — its
            //    appointment book slot was rewritten, so leave it alone.)
            if self.rob.slot[i].mem == MemPhase::WaitAgen {
                let needs_verify = !self.rob.has(i, F_VERIFIED)
                    && self.rob.slot[i].agen_done_at != NO_CYCLE
                    && self.rob.slot[i].agen_done_at <= cycle;
                if needs_verify {
                    if self.verify_region(seq) {
                        active = true;
                        // Now Ready; access may start the next cycle at
                        // the earliest (later after a redirect penalty).
                        let at = self.rob.slot[i].mem_ready_at.max(cycle + 1);
                        self.queue_mem(seq, at);
                    } else {
                        // Redirect target queue full: retry every cycle.
                        self.rob.slot[i].mem_q = QUEUE_RETRY;
                        self.mem_retry.push(seq);
                    }
                }
                continue;
            }
            // A squash earlier in this same pass may have reset this
            // action candidate; only due Ready slots proceed.
            if self.rob.slot[i].mem != MemPhase::Ready || self.rob.slot[i].mem_ready_at > cycle {
                continue;
            }
            if self.rob.has(i, F_IS_LOAD) {
                if self.try_start_load(seq) {
                    active = true;
                    self.rob.slot[i].mem_q = QUEUE_NONE; // access in flight
                } else {
                    // Ordering, port, or MSHR blocked: retry every cycle.
                    self.rob.slot[i].mem_q = QUEUE_RETRY;
                    self.mem_retry.push(seq);
                }
            } else if self.rob.slot[i].complete_at == NO_CYCLE {
                // Store: becomes commit-eligible once its data arrives.
                let data_ready = match self.rob.slot[i].data_dep {
                    NO_SEQ => 0,
                    dep => self.producer_ready_at(dep),
                };
                if data_ready != NO_CYCLE && data_ready <= cycle {
                    self.rob.slot[i].complete_at = cycle;
                    self.note_complete(seq);
                    active = true;
                    self.rob.slot[i].mem_q = QUEUE_NONE; // commit takes over
                } else if data_ready != NO_CYCLE {
                    // Arrival cycle already known: book it.
                    self.queue_mem(seq, data_ready);
                } else {
                    // Unknown: park on the data producer's wake list. The
                    // F_DATA_WAKE guard keeps one live registration across
                    // squash-and-replay.
                    self.rob.slot[i].mem_q = QUEUE_NONE;
                    if !self.rob.has(i, F_DATA_WAKE) {
                        let p = self.rob.idx(self.rob.slot[i].data_dep);
                        self.rob.slot[i].wake_next[3] = self.rob.slot[p].wake_head;
                        self.rob.slot[p].wake_head = (seq << 2) | 3;
                        self.rob.set(i, F_DATA_WAKE);
                    }
                }
            } else {
                self.rob.slot[i].mem_q = QUEUE_NONE; // completed store
            }
        }
        self.mem_scratch = actions;
        active
    }

    /// The TLB region check: reroute and retrain on a wrong prediction.
    /// Returns whether any state changed (false only when the correct
    /// target queue is full and verification must retry next cycle).
    fn verify_region(&mut self, seq: u64) -> bool {
        let i = self.rob.idx(seq);
        let route = self.rob.slot[i].route;
        let is_stack = self.rob.has(i, F_IS_STACK);
        let is_load = self.rob.has(i, F_IS_LOAD);
        let arpt_predicted = self.rob.has(i, F_ARPT_PRED);
        let decoupled = self.config.is_decoupled();
        let correct_route = if decoupled && is_stack {
            Route::Lvc
        } else {
            Route::DataCache
        };
        let penalty = self.config.region_mispredict_penalty;
        let now = self.cycle;
        if decoupled && route != correct_route {
            // Misprediction: move the entry to the right queue (space
            // permitting — if the target queue is full we retry by staying
            // in WaitAgen with verified=false? Instead: wait for space).
            let space = match correct_route {
                Route::Lvc => self.lvaq_count < self.config.lvaq_size,
                Route::DataCache => self.lsq_count < self.config.lsq_size,
            };
            if !space {
                // Target queue full; retry verification next cycle.
                return false;
            }
            self.stats.region_checks += 1;
            self.stats.region_mispredicts += 1;
            match route {
                Route::Lvc => self.lvaq_count -= 1,
                Route::DataCache => self.lsq_count -= 1,
            }
            match correct_route {
                Route::Lvc => self.lvaq_count += 1,
                Route::DataCache => self.lsq_count += 1,
            }
            if !is_load {
                // Move the store between the ordering queues.
                let (from, to) = match route {
                    Route::Lvc => (&mut self.lvaq_stores, &mut self.lsq_stores),
                    Route::DataCache => (&mut self.lsq_stores, &mut self.lvaq_stores),
                };
                if let Some(pos) = from.iter().position(|&s| s == seq) {
                    from.remove(pos);
                }
                let insert_at = to.iter().position(|&s| s > seq).unwrap_or(to.len());
                to.insert(insert_at, seq);
                // Re-key the store index under the corrected route. Its
                // address generation is done (verification follows agen),
                // so the DataCache unknown-address list is not involved in
                // either direction.
                let addr = self.rob.slot[i].addr;
                self.unlink_store_block(seq, route, addr);
                self.link_store_block(seq, correct_route, addr);
            }
            self.rob.slot[i].route = correct_route;
            self.rob.set(i, F_VERIFIED);
            self.rob.slot[i].mem = MemPhase::Ready;
            // Detected and re-dispatched on the correct path; commit
            // counts the completed recovery.
            self.rob.set(i, F_RECOVERED);
            // Detection this cycle; re-issue `penalty` cycles later.
            self.rob.slot[i].mem_ready_at = now + 1 + penalty;
            self.sched(now + 1 + penalty);
            if self.config.recovery == RecoveryMode::Squash {
                self.squash_younger(seq, now + 1 + penalty);
            }
        } else {
            if decoupled {
                self.stats.region_checks += 1;
            }
            self.rob.set(i, F_VERIFIED);
            self.rob.slot[i].mem = MemPhase::Ready;
            self.rob.slot[i].mem_ready_at = now;
        }
        // Train the ARPT on dynamic (unrevealed) instructions only; the
        // statically revealed ones are never recorded in it. The key was
        // folded once at dispatch (or at trace capture).
        if decoupled && arpt_predicted {
            self.arpt.update_key(self.rob.slot[i].arpt_key, is_stack);
        }
        true
    }

    /// Attempts to begin a load's cache access (ordering + forwarding +
    /// ports); returns whether the access (or forwarding) started.
    fn try_start_load(&mut self, seq: u64) -> bool {
        let i = self.rob.idx(seq);
        let route = self.rob.slot[i].route;
        let addr = self.rob.slot[i].addr;
        // Ordering against older stores in the same queue, answered by the
        // store index instead of a walk over the whole ordering queue
        // ([`Self::load_block_cause`] keeps the original scan as the
        // probe-side living spec; the property suite pins the equivalence
        // against a brute-force model). Two probes:
        //
        // 1. Conservative LSQ: every older DataCache store's address must
        //    be known — i.e. no older entry in the sorted unknown-agen
        //    list. (At memory-stage time `agen_done_at != NO_CYCLE`
        //    implies `agen_done_at <= cycle`: store agen issues with a
        //    +1-cycle latency and issue runs after this stage.)
        // 2. Match/forwarding: only the stores sharing the load's block
        //    and route — the slots chained under its index key. For a
        //    store, a known completion (`complete_at != NO_CYCLE`) is set
        //    in this very stage at the current cycle, so it implies
        //    `complete_at <= cycle`: exactly the scan's data-ready check.
        if route == Route::DataCache {
            if let Some(&first) = self.dc_unknown.first() {
                if first < seq {
                    return false; // an older store's address is unknown
                }
            }
        }
        let mut forward_ready = false;
        let mut st_seq = self
            .store_blocks
            .get(&store_block_key(addr, route))
            .copied()
            .unwrap_or(NO_SEQ);
        while st_seq != NO_SEQ {
            let j = self.rob.idx(st_seq);
            if st_seq < seq {
                let complete = self.rob.slot[j].complete_at;
                debug_assert!(complete == NO_CYCLE || complete <= self.cycle);
                if complete == NO_CYCLE {
                    return false; // matching store's data not produced yet
                }
                forward_ready = true;
            }
            st_seq = self.rob.slot[j].store_next;
        }
        if forward_ready {
            // Store-to-load forwarding: 1 cycle, no cache port.
            match route {
                Route::Lvc => self.stats.lvaq_forwards += 1,
                Route::DataCache => self.stats.lsq_forwards += 1,
            }
            let done_at = self.cycle + 1;
            self.rob.slot[i].mem = MemPhase::Accessed;
            self.rob.slot[i].complete_at = done_at;
            self.note_complete(seq);
            self.fire_wakes(i, done_at);
            self.sched(done_at);
            return true;
        }
        if !self.mem.port_available(route, addr) {
            return false; // bandwidth contention — retry next cycle
        }
        let Some(latency) = self.mem.access(route, addr) else {
            return false; // miss with no free MSHR — retry next cycle
        };
        let done_at = self.cycle + latency;
        self.rob.slot[i].mem = MemPhase::Accessed;
        self.rob.slot[i].complete_at = done_at;
        self.note_complete(seq);
        self.fire_wakes(i, done_at);
        self.sched(done_at);
        true
    }

    /// Branch-style recovery: every instruction younger than `seq` loses
    /// its issue and replays no earlier than `reissue_at` (its memory
    /// access, if any, restarts from address generation).
    fn squash_younger(&mut self, seq: u64, reissue_at: u64) {
        let floor = reissue_at.saturating_add(1);
        // Every slot younger than `seq` loses its completion, so the done
        // prefix cannot reach past `seq` itself.
        let keep = (seq + 1 - self.rob.head_seq) as usize;
        if self.rob.done_prefix > keep {
            self.rob.done_prefix = keep;
        }
        for k in 0..self.rob.len {
            let s_seq = self.rob.head_seq + k as u64;
            if s_seq <= seq {
                continue;
            }
            let i = self.rob.phys(k);
            // The slot's cached issue proof (booked bound, known producer
            // completions) no longer holds; the issue stage re-verifies.
            self.rob.slot[i].stale = true;
            // Model the replay by pushing the apparent dispatch time out:
            // issue requires dispatch_cycle < cycle.
            self.rob.slot[i].dispatch_cycle = self.rob.slot[i].dispatch_cycle.max(reissue_at);
            // The cached issue bound is invalid in *both* directions after
            // a squash: revoked completions make it stale-early (harmless),
            // but a replayed producer may also re-complete *earlier* than
            // the completion this slot cached at dispatch, so keeping the
            // old maximum could delay issue past the legacy core. Reset to
            // the reissue horizon — the one bound squash itself guarantees
            // (issue needs cycle > dispatch_cycle >= reissue_at).
            self.rob.slot[i].earliest_try = floor;
            self.rob.clear(i, F_ISSUED);
            self.rob.slot[i].complete_at = NO_CYCLE;
            // Re-book the issue appointment at the horizon; from there the
            // retry path re-examines it every cycle exactly as the legacy
            // walk would. Slots still awaiting a producer wake stay parked
            // (their registrations survive the squash — the producer must
            // still complete before it can commit).
            if self.rob.slot[i].unknown_deps == 0 {
                self.queue_issue(s_seq, floor);
            } else {
                self.rob.slot[i].issue_q = QUEUE_NONE;
            }
            if self.rob.slot[i].mem != MemPhase::None {
                // Memory references restart from address generation; the
                // replayed issue books the next memory appointment. A
                // DataCache store whose address *was* generated rejoins
                // the unknown-address list (one never issued is still on
                // it); its block chain membership is untouched.
                if !self.rob.has(i, F_IS_LOAD)
                    && self.rob.slot[i].route == Route::DataCache
                    && self.rob.slot[i].agen_done_at != NO_CYCLE
                {
                    match self.dc_unknown.binary_search(&s_seq) {
                        Err(p) => self.dc_unknown.insert(p, s_seq),
                        Ok(_) => debug_assert!(false, "store {s_seq} already unknown"),
                    }
                }
                self.rob.slot[i].mem = MemPhase::WaitAgen;
                self.rob.slot[i].agen_done_at = NO_CYCLE;
                self.rob.clear(i, F_VERIFIED);
                self.rob.slot[i].mem_ready_at = 0;
                self.rob.slot[i].mem_q = QUEUE_NONE;
            }
        }
        // Squashed slots become issue-eligible again the cycle after their
        // pushed-out dispatch time.
        self.sched(floor);
    }

    // ---- commit -------------------------------------------------------------

    fn commit_stage(&mut self) -> usize {
        let mut committed = 0;
        while committed < self.config.issue_width {
            // Pruned scan: a head is commit-phase-eligible exactly when its
            // completion cycle is known (None/Accessed always set it at
            // issue/access; a Ready store sets it when its data arrives; a
            // Ready load and WaitAgen never have one), and the done prefix
            // counts precisely the head-contiguous known completions. A
            // zero prefix — the common busy-cycle case — answers without
            // touching the per-slot arrays at all.
            if self.rob.done_prefix == 0 {
                break;
            }
            let i = self.rob.head;
            let complete = self.rob.slot[i].complete_at;
            debug_assert_ne!(complete, NO_CYCLE, "done prefix covers a live head");
            if complete > self.cycle {
                break;
            }
            let phase = self.rob.slot[i].mem;
            let is_mem = phase != MemPhase::None;
            let is_load = self.rob.has(i, F_IS_LOAD);
            debug_assert!(
                matches!(phase, MemPhase::None | MemPhase::Accessed)
                    || (phase == MemPhase::Ready && !is_load),
                "a known completion implies a commit-eligible phase"
            );
            let route = self.rob.slot[i].route;
            let addr = self.rob.slot[i].addr;
            let seq = self.rob.head_seq;
            let recovered = self.rob.has(i, F_RECOVERED);
            if is_mem && !is_load {
                // Stores write the cache at commit: into the write buffer
                // when one is configured and has space, else directly
                // through a port (stalling commit if none is free).
                if self.write_buffer.len() < self.config.write_buffer {
                    self.write_buffer.push_back((route, addr));
                } else {
                    if !self.mem.port_available(route, addr) {
                        break;
                    }
                    if self.mem.access(route, addr).is_none() {
                        break; // write miss with no MSHR
                    }
                }
            }
            // Release queue entries and renamer claims.
            if is_mem {
                match route {
                    Route::Lvc => {
                        self.lvaq_count -= 1;
                        if !is_load && self.lvaq_stores.front() == Some(&seq) {
                            self.lvaq_stores.pop_front();
                        }
                    }
                    Route::DataCache => {
                        self.lsq_count -= 1;
                        if !is_load && self.lsq_stores.front() == Some(&seq) {
                            self.lsq_stores.pop_front();
                        }
                    }
                }
                if !is_load {
                    // Retire from the store index (a committing store's
                    // address was generated, so the unknown list cannot
                    // hold it).
                    self.unlink_store_block(seq, route, addr);
                }
                // A store committing straight out of Ready leaves the
                // memory stage lazily (any appointment-book copy is
                // dropped once `seq` falls behind `head_seq`).
            }
            for &r in &self.rob.slot[i].claimed {
                if r != NO_REG && self.reg_producer[r as usize] == seq {
                    self.reg_producer[r as usize] = NO_SEQ;
                }
            }
            if recovered {
                self.stats.recoveries += 1;
            }
            self.rob.pop_front();
            committed += 1;
        }
        committed
    }

    // ---- stall attribution (probe support) ----------------------------------

    /// Attributes a commit-blocked cycle to exactly one [`StallCause`] by
    /// inspecting the ROB head — the unique instruction every later commit
    /// waits on. Called after [`Self::memory_stage`] (so bandwidth denials
    /// reflect this cycle's claims) and before [`Self::issue_stage`];
    /// purely observational.
    ///
    /// Every branch below compares a per-slot threshold (or port/MSHR
    /// state) against the current cycle, and all such flip points are
    /// scheduled events — which is why the cause is constant across a
    /// fast-forwarded span and can be bulk-replayed.
    fn stall_cause(&self) -> StallCause {
        if self.rob.len == 0 {
            // Nothing in flight at all: the source ran dry (end of program
            // drain, or the first cycle before anything dispatched).
            return StallCause::FetchDry;
        }
        let i = self.rob.head;
        match self.rob.slot[i].mem {
            MemPhase::None | MemPhase::WaitAgen => {
                if self.rob.has(i, F_ISSUED) {
                    // Result (or address generation) still in the FU
                    // pipeline.
                    StallCause::ExecLatency
                } else if self.rob.len >= self.config.rob_size {
                    StallCause::RobFull
                } else {
                    // The head's deps are committed by construction, so an
                    // unissued head lost FU arbitration (or just
                    // dispatched).
                    StallCause::FuFull
                }
            }
            MemPhase::Accessed => StallCause::MemLatency,
            MemPhase::Ready => {
                if self.rob.slot[i].mem_ready_at > self.cycle {
                    // Serving the region-misprediction redirect penalty.
                    StallCause::ArptRedirect
                } else if self.rob.has(i, F_IS_LOAD) {
                    self.load_block_cause(i)
                } else if self.rob.slot[i].complete_at != NO_CYCLE
                    && self.rob.slot[i].complete_at <= self.cycle
                {
                    // Store is done but commit_stage broke on it: the write
                    // buffer is full and the cache denied the write (port
                    // or MSHR).
                    StallCause::MemPort
                } else {
                    // Store waiting for its data operand.
                    StallCause::StoreOrdering
                }
            }
        }
    }

    /// Why a Ready head load has not started its access: mirrors the
    /// checks of [`Self::try_start_load`] read-only, in the same order.
    /// `i` is the head's physical index.
    fn load_block_cause(&self, i: usize) -> StallCause {
        let seq = self.rob.head_seq;
        let addr = self.rob.slot[i].addr;
        let route = self.rob.slot[i].route;
        let block = addr & !7;
        let stores = match route {
            Route::Lvc => &self.lvaq_stores,
            Route::DataCache => &self.lsq_stores,
        };
        let mut forwards = false;
        for &st_seq in stores.iter() {
            if st_seq >= seq {
                break;
            }
            let j = self.rob.idx(st_seq);
            let agen = self.rob.slot[j].agen_done_at;
            let complete = self.rob.slot[j].complete_at;
            let addr_known = agen != NO_CYCLE && agen <= self.cycle;
            let data_ready = complete != NO_CYCLE && complete <= self.cycle;
            if route == Route::DataCache && !addr_known {
                return StallCause::StoreOrdering;
            }
            if self.rob.slot[j].addr & !7 == block {
                if !data_ready {
                    return StallCause::StoreOrdering;
                }
                forwards = true;
            }
        }
        if forwards {
            // Forwarding needs no port; the load completes next cycle.
            return StallCause::MemLatency;
        }
        if !self.mem.port_available(route, addr) || self.mem.mshr_would_block(route, addr) {
            return StallCause::MemPort;
        }
        // The access starts this cycle; what remains is pure latency.
        StallCause::MemLatency
    }
}
