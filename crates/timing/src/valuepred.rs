//! Stride-based register value predictor (Table 4: 16K entries).

use arl_sim::SourceError;

use crate::state::{corrupt, StateReader, StateWriter};

/// One predictor entry.
#[derive(Clone, Copy, Default, Debug)]
struct Entry {
    last: i64,
    stride: i64,
    /// 2-bit confidence counter; predictions are used at ≥ 2.
    confidence: u8,
}

/// Classic last-value + stride predictor with 2-bit confidence, indexed by
/// pc. Only confident predictions are acted upon (the paper follows
/// Lipasti et al.'s confidence/prediction/verification structure).
#[derive(Clone, Debug)]
pub struct StridePredictor {
    entries: Vec<Entry>,
    mask: u64,
    predictions: u64,
    correct: u64,
}

impl StridePredictor {
    /// Creates a predictor with `2^log2_entries` entries.
    pub fn new(log2_entries: u32) -> StridePredictor {
        let n = 1usize << log2_entries;
        StridePredictor {
            entries: vec![Entry::default(); n],
            mask: n as u64 - 1,
            predictions: 0,
            correct: 0,
        }
    }

    /// The Table 4 configuration: 16K entries.
    pub fn table4() -> StridePredictor {
        StridePredictor::new(14)
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 3) & self.mask) as usize
    }

    /// Returns the predicted value if the entry is confident.
    pub fn predict(&self, pc: u64) -> Option<i64> {
        let e = &self.entries[self.index(pc)];
        (e.confidence >= 2).then(|| e.last.wrapping_add(e.stride))
    }

    /// Verifies a prior prediction against the actual value and trains the
    /// entry; returns whether a confident prediction was made *and* correct.
    pub fn update(&mut self, pc: u64, actual: i64) -> bool {
        let idx = self.index(pc);
        let e = &mut self.entries[idx];
        let predicted = (e.confidence >= 2).then(|| e.last.wrapping_add(e.stride));
        let new_stride = actual.wrapping_sub(e.last);
        if new_stride == e.stride {
            e.confidence = (e.confidence + 1).min(3);
        } else {
            e.confidence = e.confidence.saturating_sub(1);
            e.stride = new_stride;
        }
        e.last = actual;
        match predicted {
            Some(p) => {
                self.predictions += 1;
                let hit = p == actual;
                self.correct += hit as u64;
                hit
            }
            None => false,
        }
    }

    /// Confident predictions made so far.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Fraction of confident predictions that were correct.
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            1.0
        } else {
            self.correct as f64 / self.predictions as f64
        }
    }

    /// Serializes counters and every table entry (sharded-replay support).
    pub(crate) fn write_state(&self, w: &mut StateWriter) {
        w.u64(self.predictions);
        w.u64(self.correct);
        w.u32(self.entries.len() as u32);
        for e in &self.entries {
            w.i64(e.last);
            w.i64(e.stride);
            w.u8(e.confidence);
        }
    }

    /// Restores counters and table entries; the table size must match.
    pub(crate) fn read_state(&mut self, r: &mut StateReader) -> Result<(), SourceError> {
        self.predictions = r.u64()?;
        self.correct = r.u64()?;
        if r.len32()? != self.entries.len() {
            return Err(corrupt("value-predictor table size mismatch"));
        }
        for e in &mut self.entries {
            e.last = r.i64()?;
            e.stride = r.i64()?;
            e.confidence = r.u8()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_stride() {
        let mut p = StridePredictor::new(4);
        let pc = 0x40_0000;
        // Values 10, 20, 30... — stride 10 locks in after 2 observations.
        for (i, v) in (1..=10).map(|i| (i, i * 10)).collect::<Vec<_>>() {
            let predicted = p.predict(pc);
            p.update(pc, v);
            if i >= 4 {
                assert_eq!(predicted, Some(v), "step {i} should be predicted");
            }
        }
        assert!(p.accuracy() > 0.99);
    }

    #[test]
    fn constant_values_are_a_zero_stride() {
        let mut p = StridePredictor::new(4);
        for _ in 0..5 {
            p.update(8, 42);
        }
        assert_eq!(p.predict(8), Some(42));
    }

    #[test]
    fn random_walk_is_not_confident() {
        let mut p = StridePredictor::new(4);
        let values = [3, 17, 2, 90, 41, 7, 66, 13];
        let mut confident = 0;
        for v in values {
            if p.predict(8).is_some() {
                confident += 1;
            }
            p.update(8, v);
        }
        assert_eq!(confident, 0, "no confidence without a stable stride");
    }

    #[test]
    fn aliasing_entries_share_state() {
        let mut p = StridePredictor::new(1); // 2 entries
        for i in 0..5 {
            p.update(0, i * 4);
        }
        // pc 16 aliases pc 0 (2 entries, pc>>3 masked by 1).
        assert_eq!(p.predict(16), p.predict(0));
    }
}
