//! Deterministic fault descriptors for the timing model.
//!
//! A [`TimingFault`] is a fully materialized, seedless description of one
//! hardware upset: *what* breaks, *where*, and *when* (in deterministic
//! simulation coordinates — ARPT lookup counts or pipeline cycles — never
//! wall clock). The seeded planning layer lives in `arl-faults`; this
//! module only defines the injection points the pipeline and memory
//! system honour, so a config with an empty fault list simulates exactly
//! as before.
//!
//! Every fault carries an `id` chosen by the planner. The pipeline records
//! the ids of faults that actually fired in
//! [`crate::SimStats::faults_applied`], so downstream effects (recovery
//! counts, cycle deltas) are attributable to a specific injection.

use crate::cache::Route;

/// One materialized hardware fault to inject during a timing run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TimingFault {
    /// Planner-assigned identifier, echoed in
    /// [`crate::SimStats::faults_applied`] when the fault fires.
    pub id: u32,
    /// What breaks.
    pub kind: FaultKind,
}

/// The injection point and payload of a [`TimingFault`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// A soft error in the ARPT array: XOR `mask` into the entry selected
    /// by `slot` immediately before the `at_lookup`-th counted lookup.
    /// The table is tagless, so index-path and state-bit strikes are both
    /// modeled as corrupting an arbitrary entry's state.
    ArptSoftError {
        /// Entry selector (wrapped modulo the table size).
        slot: u64,
        /// State bits to flip (clamped to the two counter bits).
        mask: u8,
        /// Fires just before this lookup count is reached.
        at_lookup: u64,
    },
    /// A first-level port blackout: `route` accepts no new accesses during
    /// cycles `[start_cycle, start_cycle + cycles)`.
    PortBlackout {
        /// The structure that goes dark ([`Route::Lvc`] degrades to the
        /// data cache on machines without an LVC).
        route: Route,
        /// First blacked-out cycle.
        start_cycle: u64,
        /// Blackout duration in cycles.
        cycles: u64,
    },
    /// A latency spike: accesses started on `route` during cycles
    /// `[start_cycle, start_cycle + cycles)` take `extra` additional
    /// cycles (e.g. a transient retry path in the array).
    LatencySpike {
        /// The affected structure (same degradation rule as blackouts).
        route: Route,
        /// First affected cycle.
        start_cycle: u64,
        /// Window duration in cycles.
        cycles: u64,
        /// Additional latency charged per access in the window.
        extra: u64,
    },
}

impl TimingFault {
    /// Whether this fault targets the memory-port layer (and is therefore
    /// owned by the [`crate::MemSystem`] rather than the pipeline).
    pub fn is_port_fault(&self) -> bool {
        matches!(
            self.kind,
            FaultKind::PortBlackout { .. } | FaultKind::LatencySpike { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_classification() {
        let arpt = TimingFault {
            id: 1,
            kind: FaultKind::ArptSoftError {
                slot: 0,
                mask: 1,
                at_lookup: 10,
            },
        };
        let port = TimingFault {
            id: 2,
            kind: FaultKind::PortBlackout {
                route: Route::DataCache,
                start_cycle: 5,
                cycles: 3,
            },
        };
        let spike = TimingFault {
            id: 3,
            kind: FaultKind::LatencySpike {
                route: Route::Lvc,
                start_cycle: 5,
                cycles: 3,
                extra: 20,
            },
        };
        assert!(!arpt.is_port_fault());
        assert!(port.is_port_fault());
        assert!(spike.is_port_fault());
    }
}
