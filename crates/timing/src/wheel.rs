//! The event wheel behind the event-driven timing core.
//!
//! The wheel is a min-ordered schedule of *wake-up cycles*: every time the
//! pipeline arms a threshold that can change machine state in the future —
//! an FU completion, a memory return, an address-generation finish, a
//! redirect re-issue — it schedules that cycle here. When a simulated
//! cycle turns out to be a provable no-op, the core asks the wheel (and
//! the memory system) for the next pending wake-up and jumps straight to
//! the cycle before it, replaying the skipped span's per-cycle effects in
//! bulk.
//!
//! Correctness rests on two invariants, both enforced here and checked by
//! the property suite (`tests/proptest_wheel.rs`):
//!
//! 1. **Never skip past a pending event.** [`EventWheel::upcoming`] returns
//!    the exact minimum of every scheduled cycle still in the future, so a
//!    fast-forward bounded by it can never jump over a wake-up.
//! 2. **Never schedule into the past.** Events at or before the wheel's
//!    horizon (the last cycle handed to [`EventWheel::advance_to`]) are
//!    already due — the currently executing cycle handles them — so they
//!    are discarded instead of stored, and can never surface later as a
//!    stale "next event" behind the current cycle.
//!
//! Spurious *future* events are harmless by design: waking up on a cycle
//! where nothing happens merely executes one regular (no-op) cycle and
//! fast-forwards again. Missing events are the only hazard, which is why
//! the pipeline schedules on every threshold write.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Sentinel meaning "no cycle": matches the pipeline's unknown-threshold
/// encoding, so unknown completion times can be scheduled unconditionally.
const NO_CYCLE: u64 = u64::MAX;

/// Ring capacity: one slot per cycle in the near-future window. Must be a
/// power of two, and larger than any common pipeline latency so the
/// overflow heap stays cold.
const WINDOW: usize = 256;

/// A min-schedule of future wake-up cycles for the event-driven core.
///
/// Near-future events (within `WINDOW` = 256 cycles of the horizon) live in a
/// timing ring: slot `at % WINDOW` stores the scheduled cycle itself.
/// Within any `(horizon, horizon + WINDOW]` span a slot can name exactly
/// one cycle, so an overwrite either repeats the same value or replaces a
/// stale (already elapsed) one — scheduling is one store, duplicates
/// dedupe for free, and nothing needs clearing as the horizon moves.
/// Events farther out go to a (rarely used) min-heap.
#[derive(Clone, Debug)]
pub struct EventWheel {
    /// `ring[c % WINDOW] == c` ⇔ a wake-up is scheduled at cycle `c`, for
    /// `c` in `(horizon, horizon + WINDOW]`. Other values are stale.
    ring: Box<[u64]>,
    /// Events more than [`WINDOW`] cycles out.
    overflow: BinaryHeap<Reverse<u64>>,
    /// The current cycle: everything at or before it has elapsed.
    horizon: u64,
}

impl Default for EventWheel {
    fn default() -> EventWheel {
        EventWheel {
            ring: vec![NO_CYCLE; WINDOW].into_boxed_slice(),
            overflow: BinaryHeap::new(),
            horizon: 0,
        }
    }
}

impl EventWheel {
    /// Creates an empty wheel at horizon 0.
    pub fn new() -> EventWheel {
        EventWheel::default()
    }

    /// Schedules a wake-up at cycle `at`. Events at or before the horizon
    /// (already due) and the `u64::MAX` "no cycle" sentinel are discarded.
    #[inline]
    pub fn schedule(&mut self, at: u64) {
        if at > self.horizon && at != NO_CYCLE {
            if at - self.horizon <= WINDOW as u64 {
                self.ring[at as usize & (WINDOW - 1)] = at;
            } else {
                self.overflow.push(Reverse(at));
            }
        }
    }

    /// Advances the horizon to `now`, retiring every event at or before
    /// it. The horizon never moves backwards.
    #[inline]
    pub fn advance_to(&mut self, now: u64) {
        if now > self.horizon {
            self.horizon = now;
        }
        // Ring slots behind the horizon go stale by definition (their
        // stored cycle no longer matches any future slot owner); only the
        // overflow needs explicit retiring.
        while let Some(&Reverse(at)) = self.overflow.peek() {
            if at > self.horizon {
                break;
            }
            self.overflow.pop();
        }
    }

    /// The earliest scheduled cycle strictly after the horizon, or `None`
    /// when nothing is pending. Scans the ring window (only ever called on
    /// provably idle cycles, once per fast-forwarded span).
    pub fn upcoming(&self) -> Option<u64> {
        let ring_min = (self.horizon + 1..=self.horizon + WINDOW as u64)
            .find(|&c| self.ring[c as usize & (WINDOW - 1)] == c);
        let over_min = self.overflow.peek().map(|&Reverse(at)| at);
        match (ring_min, over_min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// The current horizon (last cycle passed to [`EventWheel::advance_to`]).
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Every pending wake-up cycle — ring matches plus overflow contents
    /// (overflow duplicates included) — sorted ascending. Serialization
    /// support for sharded replay: re-[`EventWheel::schedule`]-ing the list
    /// on a fresh wheel advanced to the same horizon reconstructs an
    /// equivalent wheel.
    pub fn pending(&self) -> Vec<u64> {
        let mut v: Vec<u64> = (self.horizon + 1..=self.horizon + WINDOW as u64)
            .filter(|&c| self.ring[c as usize & (WINDOW - 1)] == c)
            .collect();
        v.extend(self.overflow.iter().map(|&Reverse(at)| at));
        v.sort_unstable();
        v
    }

    /// Number of distinct pending wake-up cycles (the ring dedupes
    /// same-cycle schedules; overflow entries may still hold duplicates).
    pub fn len(&self) -> usize {
        let ring = (self.horizon + 1..=self.horizon + WINDOW as u64)
            .filter(|&c| self.ring[c as usize & (WINDOW - 1)] == c)
            .count();
        ring + self.overflow.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_exact_minimum_of_future_events() {
        let mut w = EventWheel::new();
        for at in [50, 7, 19, 7, 1000] {
            w.schedule(at);
        }
        assert_eq!(w.upcoming(), Some(7));
        w.advance_to(7);
        assert_eq!(w.upcoming(), Some(19));
        w.advance_to(18);
        assert_eq!(w.upcoming(), Some(19));
        w.advance_to(999);
        assert_eq!(w.upcoming(), Some(1000));
        w.advance_to(1000);
        assert_eq!(w.upcoming(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn past_events_are_discarded_not_stored() {
        let mut w = EventWheel::new();
        w.advance_to(100);
        w.schedule(100); // at the horizon: already due
        w.schedule(42); // strictly past
        assert!(w.is_empty());
        assert_eq!(w.upcoming(), None);
        w.schedule(101);
        assert_eq!(w.upcoming(), Some(101));
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn sentinel_is_never_scheduled() {
        let mut w = EventWheel::new();
        w.schedule(u64::MAX);
        assert!(w.is_empty());
    }

    #[test]
    fn horizon_is_monotone() {
        let mut w = EventWheel::new();
        w.advance_to(10);
        w.advance_to(3);
        assert_eq!(w.horizon(), 10);
        w.schedule(5);
        assert!(w.is_empty(), "events behind the horizon are dropped");
    }

    #[test]
    fn duplicates_dedupe_and_retire() {
        let mut w = EventWheel::new();
        w.schedule(4);
        w.schedule(4);
        w.schedule(9);
        assert_eq!(w.len(), 2, "same-cycle schedules dedupe in the ring");
        w.advance_to(4);
        assert_eq!(w.len(), 1);
        assert_eq!(w.upcoming(), Some(9));
    }

    #[test]
    fn far_future_events_cross_the_ring_window() {
        let mut w = EventWheel::new();
        w.schedule(5000); // beyond the ring window: overflow
        w.schedule(3);
        assert_eq!(w.upcoming(), Some(3));
        w.advance_to(3);
        assert_eq!(w.upcoming(), Some(5000));
        // A ring event that aliases the overflow slot must coexist.
        w.advance_to(4800);
        w.schedule(4900);
        assert_eq!(w.upcoming(), Some(4900));
        w.advance_to(4900);
        assert_eq!(w.upcoming(), Some(5000));
        w.advance_to(5000);
        assert!(w.is_empty());
    }
}
