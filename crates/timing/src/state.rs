//! Binary serialization of mid-run machine state for snapshot-sharded
//! replay.
//!
//! A shard job replays one `[snapshot_k, snapshot_k+1)` span of a trace.
//! Machine-model state is *configuration-dependent* (cache geometry, ROB
//! size, predictor capacity), so it cannot live inside the
//! configuration-independent `.arltrace` container; instead the timing
//! cores export their complete state at the segment boundary as an opaque
//! checksummed byte blob, and the next shard imports it and resumes
//! *inside* the boundary cycle (see `TimingSim::run_segment_probed`).
//! DESIGN.md documents the layout and the bit-identity argument.
//!
//! The blob is little-endian, framed by a 4-byte magic, a version byte and
//! a core tag, and sealed with a trailing FNV-1a-64 checksum (the same
//! function the `.arltrace` footer uses). Decoding is strict: a wrong
//! magic/version/core/config, a truncated field, a stale appointment, or a
//! checksum mismatch all surface as `SourceError::Corrupt`.

use arl_core::Arpt;
use arl_sim::SourceError;

use crate::cache::Route;
use crate::metrics::SimStats;
use crate::probe::StallCause;

/// Blob magic: "ARLS" (ARL machine State).
pub(crate) const STATE_MAGIC: [u8; 4] = *b"ARLS";
/// Blob format version. v2 added the memory-backend identity tag and
/// per-backend device state to the `MemSystem` section; v3 replaced the
/// event core's per-slot `pc`/`ghr`/`ra` columns with the single folded
/// ARPT key dispatch now computes (or takes precompiled from a v3 trace).
pub(crate) const STATE_VERSION: u8 = 3;
/// Core tag for state captured by the event-driven SoA core.
pub(crate) const CORE_EVENT: u8 = 0;
/// Core tag for state captured by the legacy cycle-ticking core.
pub(crate) const CORE_LEGACY: u8 = 1;

/// FNV-1a 64-bit (same parameters as the `.arltrace` footer checksum).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A `SourceError::Corrupt` tagged as a machine-state decode failure.
pub(crate) fn corrupt(msg: &str) -> SourceError {
    SourceError::Corrupt(format!("machine state: {msg}"))
}

/// Append-only little-endian byte sink; `seal` appends the checksum.
pub(crate) struct StateWriter {
    buf: Vec<u8>,
}

impl StateWriter {
    pub(crate) fn new() -> StateWriter {
        StateWriter { buf: Vec::new() }
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub(crate) fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// `u32` count followed by the items.
    pub(crate) fn u64_list(&mut self, v: &[u64]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.u64(x);
        }
    }

    /// Appends the FNV-1a-64 checksum and returns the finished blob.
    pub(crate) fn seal(mut self) -> Vec<u8> {
        let checksum = fnv1a64(&self.buf);
        self.buf.extend_from_slice(&checksum.to_le_bytes());
        self.buf
    }
}

/// Strict cursor over a sealed blob; `open` verifies the checksum first.
pub(crate) struct StateReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// Verifies the trailing checksum and positions the cursor at byte 0.
    pub(crate) fn open(blob: &'a [u8]) -> Result<StateReader<'a>, SourceError> {
        if blob.len() < 8 {
            return Err(corrupt("blob shorter than its checksum"));
        }
        let (body, tail) = blob.split_at(blob.len() - 8);
        let mut stored = [0u8; 8];
        stored.copy_from_slice(tail);
        if fnv1a64(body) != u64::from_le_bytes(stored) {
            return Err(corrupt("checksum mismatch"));
        }
        Ok(StateReader {
            bytes: body,
            pos: 0,
        })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SourceError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| corrupt("field length overflow"))?;
        if end > self.bytes.len() {
            return Err(corrupt("truncated field"));
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Result<&'a [u8], SourceError> {
        self.take(n)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, SourceError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn bool(&mut self) -> Result<bool, SourceError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(corrupt("boolean out of range")),
        }
    }

    pub(crate) fn u32(&mut self) -> Result<u32, SourceError> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(b))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, SourceError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }

    pub(crate) fn i64(&mut self) -> Result<i64, SourceError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(i64::from_le_bytes(b))
    }

    pub(crate) fn usize(&mut self) -> Result<usize, SourceError> {
        Ok(self.u64()? as usize)
    }

    /// A `u32` element count (for a list that follows).
    pub(crate) fn len32(&mut self) -> Result<usize, SourceError> {
        Ok(self.u32()? as usize)
    }

    pub(crate) fn u64_list(&mut self) -> Result<Vec<u64>, SourceError> {
        let n = self.len32()?;
        // Bound the allocation by the bytes actually present.
        let need = n
            .checked_mul(8)
            .ok_or_else(|| corrupt("list length overflow"))?;
        if need > self.bytes.len() - self.pos {
            return Err(corrupt("truncated list"));
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.u64()?);
        }
        Ok(v)
    }

    /// Every byte before the checksum must have been consumed.
    pub(crate) fn finish(self) -> Result<(), SourceError> {
        if self.pos != self.bytes.len() {
            return Err(corrupt("trailing bytes after state"));
        }
        Ok(())
    }
}

/// The per-cycle locals of a segment-boundary cut. A shard stops when its
/// entry span dries *inside* the dispatch loop — commit, memory, stall
/// attribution and issue have already run for that cycle — so the next
/// shard must resume inside the same cycle with these values carried over
/// rather than re-running the earlier stages.
#[derive(Clone, Copy, Debug)]
pub(crate) struct MidCycle {
    pub(crate) committed: usize,
    pub(crate) issued: usize,
    pub(crate) dispatched: usize,
    /// Whether the memory stage mutated state this cycle (event core's
    /// fast-forward guard; always `false` under the legacy core).
    pub(crate) mem_active: bool,
    /// The stall attribution computed before issue ran (probe runs only).
    pub(crate) stall: Option<StallCause>,
    /// Dispatch-stall counters as they stood before the dispatch loop.
    pub(crate) rob_stalls_before: u64,
    pub(crate) queue_stalls_before: u64,
}

impl MidCycle {
    pub(crate) fn write(&self, w: &mut StateWriter) {
        w.usize(self.committed);
        w.usize(self.issued);
        w.usize(self.dispatched);
        w.bool(self.mem_active);
        w.u8(match self.stall {
            None => 0,
            Some(cause) => cause.index() as u8 + 1,
        });
        w.u64(self.rob_stalls_before);
        w.u64(self.queue_stalls_before);
    }

    pub(crate) fn read(r: &mut StateReader) -> Result<MidCycle, SourceError> {
        let committed = r.usize()?;
        let issued = r.usize()?;
        let dispatched = r.usize()?;
        let mem_active = r.bool()?;
        let stall = match r.u8()? {
            0 => None,
            tag => Some(
                StallCause::ALL
                    .get(tag as usize - 1)
                    .copied()
                    .ok_or_else(|| corrupt("stall cause out of range"))?,
            ),
        };
        Ok(MidCycle {
            committed,
            issued,
            dispatched,
            mem_active,
            stall,
            rob_stalls_before: r.u64()?,
            queue_stalls_before: r.u64()?,
        })
    }
}

pub(crate) fn route_tag(r: Route) -> u8 {
    match r {
        Route::DataCache => 0,
        Route::Lvc => 1,
    }
}

pub(crate) fn route_from(tag: u8) -> Result<Route, SourceError> {
    match tag {
        0 => Ok(Route::DataCache),
        1 => Ok(Route::Lvc),
        _ => Err(corrupt("route out of range")),
    }
}

/// Serializes the *live* statistics counters. Fields derived at finish
/// time (`cycles`, cache stats, value-prediction totals, `steer_fallbacks`,
/// `peak_rss_bytes`) are reconstructed from the imported machine state, so
/// they are not stored; `config_name` is checked via the blob header.
pub(crate) fn write_stats(w: &mut StateWriter, stats: &SimStats) {
    w.u64(stats.instructions);
    w.u64(stats.mem_refs);
    w.u64(stats.lvaq_refs);
    w.u64(stats.region_checks);
    w.u64(stats.region_mispredicts);
    w.u64(stats.recoveries);
    w.u64(stats.lsq_forwards);
    w.u64(stats.lvaq_forwards);
    w.u64(stats.rob_stall_cycles);
    w.u64(stats.queue_stall_cycles);
    w.u32(stats.faults_applied.len() as u32);
    for &id in &stats.faults_applied {
        w.u32(id);
    }
}

pub(crate) fn read_stats(r: &mut StateReader, stats: &mut SimStats) -> Result<(), SourceError> {
    stats.instructions = r.u64()?;
    stats.mem_refs = r.u64()?;
    stats.lvaq_refs = r.u64()?;
    stats.region_checks = r.u64()?;
    stats.region_mispredicts = r.u64()?;
    stats.recoveries = r.u64()?;
    stats.lsq_forwards = r.u64()?;
    stats.lvaq_forwards = r.u64()?;
    stats.rob_stall_cycles = r.u64()?;
    stats.queue_stall_cycles = r.u64()?;
    let n = r.len32()?;
    stats.faults_applied.clear();
    for _ in 0..n {
        stats.faults_applied.push(r.u32()?);
    }
    Ok(())
}

/// Serializes the ARPT: lookup/update counters plus — for the bounded
/// table every machine config uses — the table bytes, touch map and
/// occupancy.
pub(crate) fn write_arpt(w: &mut StateWriter, arpt: &Arpt) {
    w.u64(arpt.lookups());
    w.u64(arpt.updates());
    match arpt.export_limited() {
        Some((table, touched, occupied)) => {
            w.u8(1);
            w.u32(table.len() as u32);
            w.bytes(table);
            w.u32(touched.len() as u32);
            for &t in touched {
                w.bool(t);
            }
            w.usize(occupied);
        }
        None => w.u8(0),
    }
}

pub(crate) fn read_arpt(r: &mut StateReader, arpt: &mut Arpt) -> Result<(), SourceError> {
    let lookups = r.u64()?;
    let updates = r.u64()?;
    arpt.set_counters(lookups, updates);
    let has_table = r.bool()?;
    if has_table != arpt.export_limited().is_some() {
        return Err(corrupt("ARPT capacity kind mismatch"));
    }
    if has_table {
        let table_len = r.len32()?;
        let table = r.bytes(table_len)?.to_vec();
        let touched_len = r.len32()?;
        let mut touched = Vec::with_capacity(touched_len.min(table_len.max(1)));
        for _ in 0..touched_len {
            touched.push(r.bool()?);
        }
        let occupied = r.usize()?;
        if !arpt.import_limited(&table, &touched, occupied) {
            return Err(corrupt("ARPT geometry mismatch"));
        }
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_round_trip() {
        let mut w = StateWriter::new();
        w.u8(7);
        w.bool(true);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 1);
        w.i64(-42);
        w.usize(123);
        w.u64_list(&[1, 2, 3]);
        let blob = w.seal();
        let mut r = StateReader::open(&blob).unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.usize().unwrap(), 123);
        assert_eq!(r.u64_list().unwrap(), vec![1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let mut w = StateWriter::new();
        w.u64(0x0123_4567_89ab_cdef);
        w.u64_list(&[9, 8, 7]);
        let blob = w.seal();
        for i in 0..blob.len() {
            let mut forged = blob.clone();
            forged[i] ^= 0x10;
            assert!(
                StateReader::open(&forged).is_err(),
                "flip at byte {i} must be caught by the checksum"
            );
        }
    }

    #[test]
    fn truncation_and_trailing_bytes_are_rejected() {
        let mut w = StateWriter::new();
        w.u64(5);
        let blob = w.seal();
        // Any prefix shorter than the full blob fails: either the checksum
        // no longer matches or the body is too short.
        for cut in 0..blob.len() {
            assert!(StateReader::open(&blob[..cut]).is_err());
        }
        // A reader that stops early is told about the leftovers.
        let r = StateReader::open(&blob).unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn mid_cycle_round_trips() {
        for stall in [None, Some(StallCause::MemPort)] {
            let mid = MidCycle {
                committed: 3,
                issued: 5,
                dispatched: 2,
                mem_active: true,
                stall,
                rob_stalls_before: 11,
                queue_stalls_before: 13,
            };
            let mut w = StateWriter::new();
            mid.write(&mut w);
            let blob = w.seal();
            let mut r = StateReader::open(&blob).unwrap();
            let back = MidCycle::read(&mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(back.committed, mid.committed);
            assert_eq!(back.issued, mid.issued);
            assert_eq!(back.dispatched, mid.dispatched);
            assert_eq!(back.mem_active, mid.mem_active);
            assert_eq!(back.stall, mid.stall);
            assert_eq!(back.rob_stalls_before, mid.rob_stalls_before);
            assert_eq!(back.queue_stalls_before, mid.queue_stalls_before);
        }
    }
}
