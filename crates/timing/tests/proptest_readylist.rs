//! Property tests pinning the event core's ready-list dispatch/issue and
//! store index against the brute-force model: the preserved legacy core,
//! which finds ready work by scanning every ROB slot every cycle and
//! resolves store-to-load visibility by walking the whole window. Any
//! divergence in `SimStats` between the two cores on the same program is
//! a bug in the appointment books, the head-contiguous commit prefix, or
//! the store index — exactly the structures PR 10's hot loop trusts.

#![cfg(feature = "proptest-tests")]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use arl_asm::{FunctionBuilder, Program, ProgramBuilder, Provenance};
use arl_isa::Gpr;
use arl_timing::{CoreMode, MachineConfig, TimingSim};
use proptest::prelude::*;

/// One random instruction "atom" for the generated program body.
#[derive(Clone, Copy, Debug)]
enum Atom {
    Alu(u8, u8, u8),
    LoadGlobal(u8, i16),
    StoreGlobal(u8, i16),
    LoadLocal(u8, u8),
    StoreLocal(u8, u8),
}

fn atom() -> impl Strategy<Value = Atom> {
    prop_oneof![
        (8u8..16, 8u8..16, 8u8..16).prop_map(|(a, b, c)| Atom::Alu(a, b, c)),
        (8u8..16, 0i16..64).prop_map(|(r, o)| Atom::LoadGlobal(r, o * 8)),
        (8u8..16, 0i16..64).prop_map(|(r, o)| Atom::StoreGlobal(r, o * 8)),
        (8u8..16, 0u8..4).prop_map(|(r, s)| Atom::LoadLocal(r, s)),
        (8u8..16, 0u8..4).prop_map(|(r, s)| Atom::StoreLocal(r, s)),
    ]
}

/// A store-heavy atom mix: mostly stores aliasing a narrow address window
/// with loads right behind them, the adversarial case for the dispatch
/// store index (block-keyed tails plus the unknown-address spine) and for
/// the pruned commit scan's store unlinking.
fn store_heavy_atom() -> impl Strategy<Value = Atom> {
    prop_oneof![
        1 => (8u8..16, 8u8..16, 8u8..16).prop_map(|(a, b, c)| Atom::Alu(a, b, c)),
        2 => (8u8..16, 0i16..8).prop_map(|(r, o)| Atom::LoadGlobal(r, o * 8)),
        4 => (8u8..16, 0i16..8).prop_map(|(r, o)| Atom::StoreGlobal(r, o * 8)),
        1 => (8u8..16, 0u8..4).prop_map(|(r, s)| Atom::LoadLocal(r, s)),
        2 => (8u8..16, 0u8..4).prop_map(|(r, s)| Atom::StoreLocal(r, s)),
    ]
}

/// Builds a straight-line program from the atoms, repeated via a loop so
/// the window wraps and the commit prefix is exercised past one ROB fill.
fn build_program(atoms: &[Atom], iters: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let g = pb.global_zeroed("arr", 64 * 8);
    let mut f = FunctionBuilder::new("main");
    let slots = [f.local(8), f.local(8), f.local(8), f.local(8)];
    f.li(Gpr::S0, 0);
    f.li(Gpr::S1, iters);
    let top = f.new_label();
    let done = f.new_label();
    f.bind(top);
    f.br(arl_isa::BranchCond::Ge, Gpr::S0, Gpr::S1, done);
    f.la_global(Gpr::T9, g);
    for &a in atoms {
        match a {
            Atom::Alu(d, s, t) => f.add(Gpr::new(d), Gpr::new(s), Gpr::new(t)),
            Atom::LoadGlobal(r, o) => f.load_ptr(Gpr::new(r), Gpr::T9, o, Provenance::StaticVar),
            Atom::StoreGlobal(r, o) => f.store_ptr(Gpr::new(r), Gpr::T9, o, Provenance::StaticVar),
            Atom::LoadLocal(r, s) => f.load_local(Gpr::new(r), slots[s as usize], 0),
            Atom::StoreLocal(r, s) => f.store_local(Gpr::new(r), slots[s as usize], 0),
        }
    }
    f.addi(Gpr::S0, Gpr::S0, 1);
    f.j(top);
    f.bind(done);
    pb.add_function(f);
    pb.link("main").expect("generated program links")
}

/// Runs `program` through both cores under `config` and asserts the full
/// statistics blocks are identical.
fn assert_cores_agree(program: &Program, mut config: MachineConfig) {
    config.core = CoreMode::Event;
    let event = TimingSim::run_program(program, &config);
    config.core = CoreMode::Legacy;
    let legacy = TimingSim::run_program(program, &config);
    assert_eq!(
        event, legacy,
        "event core diverged from the brute-force scan model"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Ready-list dispatch/issue and the pruned commit scan agree with the
    /// every-cycle linear scans on arbitrary atom programs, across the
    /// configs whose issue/memory behavior differs most.
    #[test]
    fn ready_list_matches_brute_force_scan(atoms in proptest::collection::vec(atom(), 1..24)) {
        let p = build_program(&atoms, 40);
        assert_cores_agree(&p, MachineConfig::decoupled(2, 2));
        assert_cores_agree(&p, MachineConfig::conventional(2, 2));
    }

    /// The store index (block-keyed store tails plus the unknown-address
    /// spine) resolves forwarding and ordering exactly like the legacy
    /// full-window walk under adversarial store pressure.
    #[test]
    fn store_index_matches_brute_force_scan(
        atoms in proptest::collection::vec(store_heavy_atom(), 4..32),
    ) {
        let p = build_program(&atoms, 40);
        assert_cores_agree(&p, MachineConfig::decoupled(2, 2));
        // A narrow machine keeps stores in the window longer, maximizing
        // index occupancy and unknown-address blocking.
        assert_cores_agree(&p, MachineConfig::conventional(1, 1));
    }
}
