//! Steady-state allocation stability of the replay hot loop: once the
//! simulator's scratch buffers (appointment books, retry lists, wheel
//! overflow, store index) have warmed up, running *more instructions*
//! must not allocate proportionally more. A per-cycle or per-instruction
//! allocation in the busy loop shows up here as an allocation count that
//! scales with trace length — the regression this test exists to catch.
//!
//! The whole test binary runs under a counting `#[global_allocator]`;
//! each measurement replays a pre-collected entry slice so capture-side
//! allocations stay outside the measured window.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use arl_asm::{Program, ProgramBuilder, Provenance};
use arl_isa::Gpr;
use arl_sim::{Machine, TraceEntry, TraceSource};
use arl_timing::{CoreMode, MachineConfig, TimingSim};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// A mixed ALU/load/store loop body — enough memory traffic to keep the
/// store index, LSQ/LVAQ queues, and write buffer all occupied.
fn looped_program(iters: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let g = pb.global_zeroed("arr", 64 * 8);
    let mut f = arl_asm::FunctionBuilder::new("main");
    let slot = f.local(8);
    f.li(Gpr::S0, 0);
    f.li(Gpr::S1, iters);
    let top = f.new_label();
    let done = f.new_label();
    f.bind(top);
    f.br(arl_isa::BranchCond::Ge, Gpr::S0, Gpr::S1, done);
    f.la_global(Gpr::T9, g);
    f.load_ptr(Gpr::T0, Gpr::T9, 0, Provenance::StaticVar);
    f.add(Gpr::T1, Gpr::T0, Gpr::S0);
    f.store_ptr(Gpr::T1, Gpr::T9, 8, Provenance::StaticVar);
    f.store_local(Gpr::T1, slot, 0);
    f.load_local(Gpr::T2, slot, 0);
    f.add(Gpr::T3, Gpr::T2, Gpr::T1);
    f.addi(Gpr::S0, Gpr::S0, 1);
    f.j(top);
    f.bind(done);
    pb.add_function(f);
    pb.link("main").expect("program links")
}

/// Collects the full entry stream of `program` by running the functional
/// machine as a `TraceSource`.
fn collect_entries(program: &Program) -> Vec<TraceEntry> {
    let mut machine = Machine::new(program);
    let mut entries = Vec::new();
    while let Some(e) = machine.next_entry().expect("functional execution") {
        entries.push(e);
    }
    entries
}

/// Allocations performed while replaying `entries` through a fresh sim.
fn allocs_for(entries: &[TraceEntry], config: &MachineConfig) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let stats = TimingSim::run_trace(entries, config);
    assert_eq!(stats.instructions, entries.len() as u64);
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

/// Replay allocation counts must be (near-)independent of trace length:
/// the short and 4x-longer replays may differ only by the handful of
/// amortized-doubling growths of bounded scratch structures, never by
/// anything proportional to the extra ~30k instructions.
#[test]
fn hot_loop_allocations_do_not_scale_with_trace_length() {
    let short = collect_entries(&looped_program(1_000));
    let long = collect_entries(&looped_program(4_000));
    assert!(long.len() > 3 * short.len());

    for (name, config) in [
        ("decoupled", MachineConfig::decoupled(2, 2)),
        ("conventional", MachineConfig::conventional(2, 2)),
    ] {
        let mut config = config;
        config.core = CoreMode::Event;
        // Warm-up run so lazily initialized process state (stdio locks,
        // thread-local buffers) does not pollute the measurement.
        let _ = allocs_for(&short, &config);
        let a_short = allocs_for(&short, &config);
        let a_long = allocs_for(&long, &config);
        // Each run pays the same fixed construction cost (ROB, books,
        // wheel, index maps). The longer run may add a few extra capacity
        // doublings; 64 is orders of magnitude below any per-instruction
        // or per-cycle leak (~30k instructions / ~40k cycles of headroom).
        assert!(
            a_long <= a_short + 64,
            "{name}: replaying 4x the instructions cost {a_long} allocations \
             vs {a_short} — the hot loop is allocating per cycle"
        );
    }
}

/// The same stability bound holds for the legacy core since its
/// memory-stage action list moved into persistent scratch.
#[test]
fn legacy_hot_loop_allocations_do_not_scale_with_trace_length() {
    let short = collect_entries(&looped_program(1_000));
    let long = collect_entries(&looped_program(4_000));

    let mut config = MachineConfig::decoupled(2, 2);
    config.core = CoreMode::Legacy;
    let _ = allocs_for(&short, &config);
    let a_short = allocs_for(&short, &config);
    let a_long = allocs_for(&long, &config);
    assert!(
        a_long <= a_short + 64,
        "legacy: replaying 4x the instructions cost {a_long} allocations \
         vs {a_short} — the memory-stage scratch hoist regressed"
    );
}
