//! Property tests of the cycle-level model over randomly generated (but
//! valid) straight-line programs: resource monotonicity and conservation
//! invariants.

#![cfg(feature = "proptest-tests")]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use arl_asm::{FunctionBuilder, Program, ProgramBuilder, Provenance};
use arl_isa::Gpr;
use arl_timing::{MachineConfig, TimingSim};
use proptest::prelude::*;

/// One random instruction "atom" for the generated program body.
#[derive(Clone, Copy, Debug)]
enum Atom {
    Alu(u8, u8, u8),
    LoadGlobal(u8, i16),
    StoreGlobal(u8, i16),
    LoadLocal(u8, u8),
    StoreLocal(u8, u8),
}

fn atom() -> impl Strategy<Value = Atom> {
    prop_oneof![
        (8u8..16, 8u8..16, 8u8..16).prop_map(|(a, b, c)| Atom::Alu(a, b, c)),
        (8u8..16, 0i16..64).prop_map(|(r, o)| Atom::LoadGlobal(r, o * 8)),
        (8u8..16, 0i16..64).prop_map(|(r, o)| Atom::StoreGlobal(r, o * 8)),
        (8u8..16, 0u8..4).prop_map(|(r, s)| Atom::LoadLocal(r, s)),
        (8u8..16, 0u8..4).prop_map(|(r, s)| Atom::StoreLocal(r, s)),
    ]
}

/// Builds a straight-line program from the atoms, repeated via a loop so
/// the simulation has some length.
fn build_program(atoms: &[Atom], iters: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let g = pb.global_zeroed("arr", 64 * 8);
    let mut f = FunctionBuilder::new("main");
    let slots = [f.local(8), f.local(8), f.local(8), f.local(8)];
    f.li(Gpr::S0, 0);
    f.li(Gpr::S1, iters);
    let top = f.new_label();
    let done = f.new_label();
    f.bind(top);
    f.br(arl_isa::BranchCond::Ge, Gpr::S0, Gpr::S1, done);
    f.la_global(Gpr::T9, g);
    for &a in atoms {
        match a {
            Atom::Alu(d, s, t) => f.add(Gpr::new(d), Gpr::new(s), Gpr::new(t)),
            Atom::LoadGlobal(r, o) => f.load_ptr(Gpr::new(r), Gpr::T9, o, Provenance::StaticVar),
            Atom::StoreGlobal(r, o) => f.store_ptr(Gpr::new(r), Gpr::T9, o, Provenance::StaticVar),
            Atom::LoadLocal(r, s) => f.load_local(Gpr::new(r), slots[s as usize], 0),
            Atom::StoreLocal(r, s) => f.store_local(Gpr::new(r), slots[s as usize], 0),
        }
    }
    f.addi(Gpr::S0, Gpr::S0, 1);
    f.j(top);
    f.bind(done);
    pb.add_function(f);
    pb.link("main").expect("generated program links")
}

/// Deterministically generates `n` random-but-fixed atom programs.
fn seeded_programs(n: usize) -> Vec<Program> {
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|_| {
            let len = 1 + (next() % 20) as usize;
            let atoms: Vec<Atom> = (0..len)
                .map(|_| {
                    let r = (8 + next() % 8) as u8;
                    match next() % 5 {
                        0 => Atom::Alu(r, (8 + next() % 8) as u8, (8 + next() % 8) as u8),
                        1 => Atom::LoadGlobal(r, (next() % 64) as i16 * 8),
                        2 => Atom::StoreGlobal(r, (next() % 64) as i16 * 8),
                        3 => Atom::LoadLocal(r, (next() % 4) as u8),
                        _ => Atom::StoreLocal(r, (next() % 4) as u8),
                    }
                })
                .collect();
            build_program(&atoms, 60)
        })
        .collect()
}

/// Greedy, oldest-first arbitration is not *strictly* monotone in
/// resources — a well-known cycle-simulator (and real-machine) anomaly —
/// so resource monotonicity is asserted in aggregate over a fixed random
/// program population, with a bounded per-program inversion.
#[test]
fn ports_are_monotone_in_aggregate() {
    let programs = seeded_programs(30);
    let mut totals = [0u64; 4];
    for p in &programs {
        let mut machine = arl_sim::Machine::new(p);
        machine.run(10_000_000).unwrap();
        let mut prev = u64::MAX;
        for (i, ports) in [1usize, 2, 4, 16].into_iter().enumerate() {
            let stats = TimingSim::run_program(p, &MachineConfig::conventional(ports, 2));
            assert_eq!(stats.instructions, machine.retired());
            assert!(
                stats.cycles as f64 <= prev as f64 * 1.40,
                "{ports} ports catastrophically slower: {} > {}",
                stats.cycles,
                prev
            );
            totals[i] += stats.cycles;
            prev = stats.cycles;
        }
    }
    assert!(
        totals[1] <= totals[0] && totals[2] <= totals[1] && totals[3] <= totals[2],
        "aggregate cycles must fall with port count: {totals:?}"
    );
}

/// Same aggregate treatment for ROB capacity.
#[test]
fn rob_size_is_monotone_in_aggregate() {
    let programs = seeded_programs(30);
    let mut totals = [0u64; 3];
    for p in &programs {
        let mut prev = u64::MAX;
        for (i, rob) in [32usize, 64, 256].into_iter().enumerate() {
            let mut config = MachineConfig::baseline_2_0();
            config.rob_size = rob;
            config.name = format!("rob{rob}");
            let stats = TimingSim::run_program(p, &config);
            assert!(
                stats.cycles as f64 <= prev as f64 * 1.40,
                "ROB {rob} catastrophically slower: {} > {}",
                stats.cycles,
                prev
            );
            totals[i] += stats.cycles;
            prev = stats.cycles;
        }
    }
    assert!(
        totals[1] <= totals[0] && totals[2] <= totals[1],
        "aggregate cycles must fall with ROB size: {totals:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The decoupled machine is deterministic, conserves instructions, and
    /// steers every stack reference it predicted to the LVAQ.
    #[test]
    fn decoupled_runs_are_deterministic(atoms in proptest::collection::vec(atom(), 1..24)) {
        let p = build_program(&atoms, 40);
        let config = MachineConfig::decoupled(2, 2);
        let a = TimingSim::run_program(&p, &config);
        let b = TimingSim::run_program(&p, &config);
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.lvaq_refs, b.lvaq_refs);
        prop_assert_eq!(a.region_mispredicts, b.region_mispredicts);
        prop_assert_eq!(a.mem_refs, a.region_checks, "every ref is verified");
        // Frame accesses exist iff the atom list contains local ops.
        let has_locals = atoms.iter().any(|a| matches!(a, Atom::LoadLocal(..) | Atom::StoreLocal(..)));
        if has_locals {
            prop_assert!(a.lvaq_refs > 0);
        }
    }
}
