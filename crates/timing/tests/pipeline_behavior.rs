//! Behavioural tests of the cycle-level pipeline against hand-built
//! programs with known structure.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use arl_asm::{FunctionBuilder, ProgramBuilder, Provenance};
use arl_isa::{BranchCond, Gpr};
use arl_timing::{MachineConfig, TimingSim};

/// A program with a burst of independent data-region loads per iteration —
/// pure bandwidth stress.
fn load_burst_program(iters: i64, loads_per_iter: usize) -> arl_asm::Program {
    let mut pb = ProgramBuilder::new();
    let g = pb.global_zeroed("arr", 4096);
    let mut f = FunctionBuilder::new("main");
    f.li(Gpr::S0, 0);
    f.li(Gpr::S1, iters);
    let top = f.new_label();
    let done = f.new_label();
    f.bind(top);
    f.br(BranchCond::Ge, Gpr::S0, Gpr::S1, done);
    f.la_global(Gpr::T9, g);
    for i in 0..loads_per_iter {
        let rd = Gpr::new((8 + (i % 8)) as u8); // t0..t7
        f.load_ptr(rd, Gpr::T9, (i as i16 % 64) * 8, Provenance::StaticVar);
    }
    f.addi(Gpr::S0, Gpr::S0, 1);
    f.j(top);
    f.bind(done);
    pb.add_function(f);
    pb.link("main").unwrap()
}

/// A long chain of dependent adds — latency-bound, bandwidth-irrelevant.
fn dependent_chain_program(n: i64) -> arl_asm::Program {
    let mut pb = ProgramBuilder::new();
    let mut f = FunctionBuilder::new("main");
    f.li(Gpr::T0, 1);
    f.li(Gpr::S0, 0);
    f.li(Gpr::S1, n);
    let top = f.new_label();
    let done = f.new_label();
    f.bind(top);
    f.br(BranchCond::Ge, Gpr::S0, Gpr::S1, done);
    // A serial xorshift chain: values are erratic per pc, so the stride
    // value predictor cannot break the dependence.
    for _ in 0..3 {
        f.srli(Gpr::T1, Gpr::T0, 1);
        f.xor(Gpr::T0, Gpr::T0, Gpr::T1);
        f.add(Gpr::T0, Gpr::T0, Gpr::S0);
    }
    f.addi(Gpr::S0, Gpr::S0, 1);
    f.j(top);
    f.bind(done);
    pb.add_function(f);
    pb.link("main").unwrap()
}

/// Stack-heavy program: every iteration spills and reloads locals.
fn stack_churn_program(iters: i64) -> arl_asm::Program {
    let mut pb = ProgramBuilder::new();
    let mut f = FunctionBuilder::new("main");
    let a = f.local(8);
    let b = f.local(8);
    let c = f.local(8);
    f.li(Gpr::S0, 0);
    f.li(Gpr::S1, iters);
    let top = f.new_label();
    let done = f.new_label();
    f.bind(top);
    f.br(BranchCond::Ge, Gpr::S0, Gpr::S1, done);
    f.store_local(Gpr::S0, a, 0);
    f.store_local(Gpr::S0, b, 0);
    f.store_local(Gpr::S0, c, 0);
    f.load_local(Gpr::T0, a, 0);
    f.load_local(Gpr::T1, b, 0);
    f.load_local(Gpr::T2, c, 0);
    f.addi(Gpr::S0, Gpr::S0, 1);
    f.j(top);
    f.bind(done);
    pb.add_function(f);
    pb.link("main").unwrap()
}

#[test]
fn more_ports_never_hurt_a_bandwidth_bound_program() {
    let p = load_burst_program(500, 12);
    let two = TimingSim::run_program(&p, &MachineConfig::conventional(2, 2));
    let four = TimingSim::run_program(&p, &MachineConfig::conventional(4, 2));
    let sixteen = TimingSim::run_program(&p, &MachineConfig::conventional(16, 2));
    assert_eq!(two.instructions, four.instructions);
    assert!(
        four.cycles < two.cycles,
        "4 ports beat 2: {} vs {}",
        four.cycles,
        two.cycles
    );
    assert!(sixteen.cycles <= four.cycles);
    // With 12 independent loads per ~16 instructions, 2 ports cap the IPC
    // well below the width.
    assert!(
        two.ipc() < 4.0,
        "2-port IPC is bandwidth-capped: {}",
        two.ipc()
    );
}

#[test]
fn latency_bound_program_ignores_ports() {
    let p = dependent_chain_program(300);
    let two = TimingSim::run_program(&p, &MachineConfig::conventional(2, 2));
    let sixteen = TimingSim::run_program(&p, &MachineConfig::conventional(16, 2));
    let ratio = two.cycles as f64 / sixteen.cycles as f64;
    assert!(
        (0.98..1.02).contains(&ratio),
        "serial chains don't care about ports: {ratio}"
    );
    // The 8-deep dependent chain bounds IPC near 10/8 per iteration body.
    assert!(two.ipc() < 2.0);
}

#[test]
fn decoupling_helps_when_stack_and_data_compete() {
    // Mix: the load-burst program is all data-region; stack churn is all
    // stack. Interleave them by concatenating bodies in one program.
    let mut pb = ProgramBuilder::new();
    let g = pb.global_zeroed("arr", 4096);
    let mut f = FunctionBuilder::new("main");
    let a = f.local(8);
    let b = f.local(8);
    f.li(Gpr::S0, 0);
    f.li(Gpr::S1, 400);
    let top = f.new_label();
    let done = f.new_label();
    f.bind(top);
    f.br(BranchCond::Ge, Gpr::S0, Gpr::S1, done);
    f.la_global(Gpr::T9, g);
    // 4 data loads + 2 stack stores + 2 stack loads per iteration.
    for i in 0..4 {
        let rd = Gpr::new((8 + i) as u8);
        f.load_ptr(rd, Gpr::T9, i as i16 * 8, Provenance::StaticVar);
    }
    f.store_local(Gpr::T0, a, 0);
    f.store_local(Gpr::T1, b, 0);
    f.load_local(Gpr::T2, a, 0);
    f.load_local(Gpr::T3, b, 0);
    f.addi(Gpr::S0, Gpr::S0, 1);
    f.j(top);
    f.bind(done);
    pb.add_function(f);
    let p = pb.link("main").unwrap();

    let base = TimingSim::run_program(&p, &MachineConfig::baseline_2_0());
    let split = TimingSim::run_program(&p, &MachineConfig::decoupled(2, 2));
    let wide = TimingSim::run_program(&p, &MachineConfig::conventional(16, 2));
    assert!(
        split.cycles < base.cycles,
        "(2+2) must beat (2+0): {} vs {}",
        split.cycles,
        base.cycles
    );
    assert!(wide.cycles <= split.cycles, "(16+0) is the upper bound");
    // Steering on SP/FP addressing is exact here: no mispredictions.
    assert_eq!(split.region_mispredicts, 0);
    assert!(split.lvaq_refs > 0, "stack refs steered to the LVAQ");
}

#[test]
fn stack_churn_hits_the_lvc() {
    let p = stack_churn_program(300);
    let split = TimingSim::run_program(&p, &MachineConfig::decoupled(2, 2));
    let lvc = split.lvc.expect("decoupled machine has an LVC");
    assert!(lvc.accesses() > 0);
    assert!(
        lvc.hit_rate() > 0.95,
        "4KB LVC easily holds one frame: {}",
        lvc.hit_rate()
    );
}

#[test]
fn store_to_load_forwarding_is_counted() {
    let p = stack_churn_program(100);
    // Conventional machine: the store→load pairs on the same slots forward
    // in the LSQ when the load catches the store in flight.
    let base = TimingSim::run_program(&p, &MachineConfig::baseline_2_0());
    assert!(
        base.lsq_forwards > 0,
        "same-address store→load pairs must forward"
    );
    let split = TimingSim::run_program(&p, &MachineConfig::decoupled(2, 2));
    assert!(
        split.lvaq_forwards > 0,
        "in the decoupled machine the same pairs fast-forward in the LVAQ"
    );
}

#[test]
fn region_accuracy_is_high_on_revealed_code() {
    let p = stack_churn_program(200);
    let split = TimingSim::run_program(&p, &MachineConfig::decoupled(2, 2));
    assert!(split.region_checks > 0);
    assert!(split.region_accuracy() > 0.99);
}

#[test]
fn instructions_match_functional_run() {
    let p = load_burst_program(50, 4);
    let mut m = arl_sim::Machine::new(&p);
    let outcome = m.run(10_000_000).unwrap();
    assert!(outcome.exited);
    let stats = TimingSim::run_program(&p, &MachineConfig::baseline_2_0());
    assert_eq!(stats.instructions, m.retired());
}

#[test]
fn value_prediction_speeds_up_strided_chains() {
    // Loop counter has stride 1: its consumers (the branch) are
    // predictable; the dependent-add chain itself is not strided (doubling)
    // so this program isolates the counter effect.
    let p = dependent_chain_program(300);
    let mut with = MachineConfig::conventional(16, 2);
    with.name = "vp-on".into();
    let mut without = MachineConfig::conventional(16, 2);
    without.value_prediction = false;
    without.name = "vp-off".into();
    let on = TimingSim::run_program(&p, &with);
    let off = TimingSim::run_program(&p, &without);
    assert!(on.value_predictions > 0);
    assert!(
        on.cycles <= off.cycles,
        "value prediction never hurts in this model: {} vs {}",
        on.cycles,
        off.cycles
    );
}

#[test]
fn squash_recovery_is_never_faster_than_selective_reissue() {
    // perl-like pointer traffic produces some region mispredictions; the
    // branch-style squash must cost at least as much as selective
    // re-issue (paper Section 4.3 presents squash as the cheaper-hardware,
    // slower-recovery option).
    let mut pb = ProgramBuilder::new();
    let g = pb.global_zeroed("arr", 4096);
    let mut f = FunctionBuilder::new("main");
    let slot = f.local(64);
    f.li(Gpr::S0, 0);
    f.li(Gpr::S1, 600);
    let top = f.new_label();
    let done = f.new_label();
    f.bind(top);
    f.br(BranchCond::Ge, Gpr::S0, Gpr::S1, done);
    // Alternate a pointer between a global and a frame slot so its loads
    // mispredict now and then.
    let use_stack = f.new_label();
    let deref = f.new_label();
    f.andi(Gpr::T0, Gpr::S0, 1);
    f.bnez(Gpr::T0, use_stack);
    f.la_global(Gpr::T1, g);
    f.j(deref);
    f.bind(use_stack);
    f.addr_of_local(Gpr::T1, slot, 0);
    f.bind(deref);
    f.load_ptr(Gpr::T2, Gpr::T1, 0, Provenance::Mixed);
    f.store_ptr(Gpr::T2, Gpr::T1, 8, Provenance::Mixed);
    f.addi(Gpr::S0, Gpr::S0, 1);
    f.j(top);
    f.bind(done);
    pb.add_function(f);
    let p = pb.link("main").unwrap();

    let mut selective = MachineConfig::decoupled(2, 2);
    selective.name = "sel".into();
    let mut squash = MachineConfig::decoupled(2, 2);
    squash.recovery = arl_timing::RecoveryMode::Squash;
    squash.name = "squash".into();
    let a = TimingSim::run_program(&p, &selective);
    let b = TimingSim::run_program(&p, &squash);
    assert!(a.region_mispredicts > 0, "the pointer flip-flops");
    assert_eq!(a.instructions, b.instructions);
    assert!(
        b.cycles >= a.cycles,
        "squash cannot beat selective re-issue: {} vs {}",
        b.cycles,
        a.cycles
    );
}

#[test]
fn banked_cache_sits_between_one_true_port_and_n_true_ports() {
    let p = load_burst_program(400, 12);
    let one = TimingSim::run_program(&p, &MachineConfig::conventional(1, 2));
    let four_true = TimingSim::run_program(&p, &MachineConfig::conventional(4, 2));
    let mut banked = MachineConfig::conventional(4, 2);
    banked.dcache = banked.dcache.with_banks(4);
    banked.name = "(4-bank)".into();
    let four_banked = TimingSim::run_program(&p, &banked);
    assert!(
        four_banked.cycles <= one.cycles,
        "4 banks beat 1 port: {} vs {}",
        four_banked.cycles,
        one.cycles
    );
    assert!(
        four_banked.cycles >= four_true.cycles,
        "bank conflicts cannot beat ideal ports: {} vs {}",
        four_banked.cycles,
        four_true.cycles
    );
}

#[test]
fn line_buffer_helps_a_single_ported_cache() {
    // Sequential loads hit the same 32-byte line repeatedly — the line
    // buffer's best case.
    let p = load_burst_program(400, 8);
    let single = TimingSim::run_program(&p, &MachineConfig::conventional(1, 2));
    let mut lb = MachineConfig::conventional(1, 2);
    lb.dcache = lb.dcache.with_line_buffer();
    lb.name = "(1+lb)".into();
    let buffered = TimingSim::run_program(&p, &lb);
    assert!(
        buffered.cycles < single.cycles,
        "the line buffer adds bandwidth: {} vs {}",
        buffered.cycles,
        single.cycles
    );
}

#[test]
fn write_buffer_relieves_commit_port_pressure() {
    let p = stack_churn_program(400);
    let without = TimingSim::run_program(&p, &MachineConfig::conventional(1, 2));
    let mut with = MachineConfig::conventional(1, 2);
    with.write_buffer = 8;
    with.name = "(1+wb8)".into();
    let buffered = TimingSim::run_program(&p, &with);
    assert!(
        buffered.cycles <= without.cycles,
        "a write buffer never hurts: {} vs {}",
        buffered.cycles,
        without.cycles
    );
    assert_eq!(buffered.instructions, without.instructions);
}

#[test]
fn bounded_mshrs_never_help() {
    let p = load_burst_program(300, 12);
    let unbounded = TimingSim::run_program(&p, &MachineConfig::conventional(4, 2));
    let mut tight = MachineConfig::conventional(4, 2);
    tight.mshrs = 1;
    tight.name = "(4)mshr1".into();
    let bounded = TimingSim::run_program(&p, &tight);
    assert!(
        bounded.cycles >= unbounded.cycles,
        "fewer MSHRs cannot speed things up: {} vs {}",
        bounded.cycles,
        unbounded.cycles
    );
}

/// A pointer that alternates between a stack local and a global every
/// iteration, dereferenced through a scratch register so the static rules
/// cannot classify it (rule 4 → ARPT steering on decoupled machines).
fn alternating_region_program(iters: i64) -> arl_asm::Program {
    let mut pb = ProgramBuilder::new();
    let g = pb.global_zeroed("g", 64);
    let mut f = FunctionBuilder::new("main");
    let a = f.local(8);
    f.li(Gpr::S0, 0);
    f.li(Gpr::S1, iters);
    let top = f.new_label();
    let even = f.new_label();
    let after = f.new_label();
    let done = f.new_label();
    f.bind(top);
    f.br(BranchCond::Ge, Gpr::S0, Gpr::S1, done);
    f.andi(Gpr::T1, Gpr::S0, 1);
    f.beqz(Gpr::T1, even);
    f.addr_of_local(Gpr::T9, a, 0);
    f.j(after);
    f.bind(even);
    f.la_global(Gpr::T9, g);
    f.bind(after);
    f.load_ptr(Gpr::T0, Gpr::T9, 0, Provenance::Mixed);
    f.addi(Gpr::S0, Gpr::S0, 1);
    f.j(top);
    f.bind(done);
    pb.add_function(f);
    pb.link("main").unwrap()
}

#[test]
fn every_region_mispredict_is_recovered() {
    let p = alternating_region_program(300);
    let split = TimingSim::run_program(&p, &MachineConfig::decoupled(2, 2));
    assert!(
        split.region_mispredicts > 0,
        "alternating regions must mispredict at least during warmup"
    );
    // Selective re-issue: every wrongly-steered reference is detected,
    // re-dispatched on the correct path, and committed — none lost.
    assert_eq!(split.recoveries, split.region_mispredicts);

    let mut squash = MachineConfig::decoupled(2, 2);
    squash.recovery = arl_timing::RecoveryMode::Squash;
    squash.name = "(2+2)sq".into();
    let squashed = TimingSim::run_program(&p, &squash);
    assert!(squashed.recoveries > 0);
    // A squash can replay a verification, so detections may exceed the
    // distinct recovered references — but never the other way around.
    assert!(squashed.recoveries <= squashed.region_mispredicts);
    assert_eq!(squashed.instructions, split.instructions);
}

#[test]
fn conventional_machines_never_recover() {
    let p = alternating_region_program(100);
    let base = TimingSim::run_program(&p, &MachineConfig::baseline_2_0());
    assert_eq!(base.recoveries, 0);
    assert_eq!(base.region_mispredicts, 0);
    assert!(base.faults_applied.is_empty());
}

#[test]
fn arpt_soft_error_never_corrupts_function() {
    use arl_timing::{FaultKind, TimingFault};
    let p = alternating_region_program(200);
    let clean = TimingSim::run_program(&p, &MachineConfig::decoupled(2, 2));
    let mut faulty_config = MachineConfig::decoupled(2, 2);
    for id in 0..4u32 {
        faulty_config.faults.push(TimingFault {
            id,
            kind: FaultKind::ArptSoftError {
                slot: 1000 + id as u64,
                mask: 0b01,
                at_lookup: 10 + id as u64 * 7,
            },
        });
    }
    let faulty = TimingSim::run_program(&p, &faulty_config);
    // The ARPT is a pure steering hint: corrupting it can only change
    // timing, never the committed instruction stream.
    assert_eq!(faulty.instructions, clean.instructions);
    assert_eq!(faulty.mem_refs, clean.mem_refs);
    assert_eq!(faulty.peak_rss_bytes, clean.peak_rss_bytes);
    // All four strikes fired (the program makes > 38 dynamic lookups) and
    // are attributed in ascending id order.
    assert_eq!(faulty.faults_applied, vec![0, 1, 2, 3]);
    // A wrong steer caused by the strike is detected and recovered, so
    // the invariant holds under fault too.
    assert_eq!(faulty.recoveries, faulty.region_mispredicts);
}

#[test]
fn port_blackout_slows_but_never_corrupts() {
    use arl_timing::{FaultKind, Route, TimingFault};
    let p = load_burst_program(200, 8);
    let clean = TimingSim::run_program(&p, &MachineConfig::baseline_2_0());
    let mut faulty_config = MachineConfig::baseline_2_0();
    faulty_config.faults.push(TimingFault {
        id: 42,
        kind: FaultKind::PortBlackout {
            route: Route::DataCache,
            start_cycle: 10,
            cycles: 100,
        },
    });
    let faulty = TimingSim::run_program(&p, &faulty_config);
    assert_eq!(faulty.instructions, clean.instructions);
    assert_eq!(faulty.mem_refs, clean.mem_refs);
    assert!(
        faulty.cycles >= clean.cycles + 90,
        "a 100-cycle blackout must cost most of its window: {} vs {}",
        faulty.cycles,
        clean.cycles
    );
    assert_eq!(faulty.faults_applied, vec![42]);
}

#[test]
fn latency_spike_slows_but_never_corrupts() {
    use arl_timing::{FaultKind, Route, TimingFault};
    let p = load_burst_program(200, 8);
    let clean = TimingSim::run_program(&p, &MachineConfig::baseline_2_0());
    let mut faulty_config = MachineConfig::baseline_2_0();
    faulty_config.faults.push(TimingFault {
        id: 9,
        kind: FaultKind::LatencySpike {
            route: Route::DataCache,
            start_cycle: 5,
            cycles: 200,
            extra: 30,
        },
    });
    let faulty = TimingSim::run_program(&p, &faulty_config);
    assert_eq!(faulty.instructions, clean.instructions);
    assert!(faulty.cycles > clean.cycles);
    assert_eq!(faulty.faults_applied, vec![9]);
}
