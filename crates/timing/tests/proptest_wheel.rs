//! Property tests for the event wheel and the probe's span replay — the
//! two mechanisms the event-driven core's bit-identity rests on.
//!
//! * The wheel may never *lose* a future event (fast-forwarding past one
//!   would make the core sleep through a state change), and may never
//!   surface an event at or before its horizon (an event "in the past"
//!   would make the core re-execute a cycle it already finished).
//! * A fast-forwarded span replayed into the probe via `record_span` must
//!   be indistinguishable from having recorded each skipped cycle
//!   individually — including the stall-attribution conservation identity
//!   `useful + Σ stalls == cycles`.

#![cfg(feature = "proptest-tests")]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use arl_timing::{CycleObs, EventWheel, Probe, Recorder, StallCause};
use proptest::prelude::*;

/// One random wheel interaction.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Schedule an event at an absolute cycle.
    Schedule(u64),
    /// Advance the horizon forward by this many cycles.
    Advance(u64),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..500).prop_map(Op::Schedule),
        (0u64..40).prop_map(Op::Advance),
    ]
}

/// Reference model: a plain sorted multiset of scheduled cycles plus the
/// same horizon rule, kept deliberately naive.
#[derive(Default)]
struct ModelWheel {
    pending: Vec<u64>,
    horizon: u64,
}

impl ModelWheel {
    fn schedule(&mut self, at: u64) {
        if at > self.horizon && at != u64::MAX {
            self.pending.push(at);
        }
    }

    fn advance_to(&mut self, now: u64) {
        if now > self.horizon {
            self.horizon = now;
        }
        self.pending.retain(|&at| at > self.horizon);
    }

    fn upcoming(&self) -> Option<u64> {
        self.pending.iter().copied().min()
    }
}

fn stall_for(index: usize) -> Option<StallCause> {
    if index == 0 {
        None
    } else {
        Some(StallCause::ALL[(index - 1) % StallCause::ALL.len()])
    }
}

fn obs_from(seed: (usize, usize, usize, usize, usize, usize)) -> CycleObs {
    let (rob, issued, lsq, lvaq, claims, stall) = seed;
    CycleObs {
        rob_occupancy: rob,
        issued,
        committed: usize::from(stall == 0),
        lsq_depth: lsq,
        lvaq_depth: lvaq,
        dcache_claims: claims,
        lvc_claims: claims / 2,
        stall: stall_for(stall),
    }
}

fn obs_seed() -> impl Strategy<Value = (usize, usize, usize, usize, usize, usize)> {
    (
        0usize..128,
        0usize..16,
        0usize..32,
        0usize..32,
        0usize..6,
        0usize..9,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The wheel tracks the reference model exactly: after any operation
    /// sequence, `upcoming()` is the true minimum pending future event —
    /// so fast-forwarding to `upcoming()` can never skip past an event.
    #[test]
    fn wheel_never_loses_or_reorders_events(ops in proptest::collection::vec(op(), 1..80)) {
        let mut wheel = EventWheel::new();
        let mut model = ModelWheel::default();
        for o in ops {
            match o {
                Op::Schedule(at) => {
                    wheel.schedule(at);
                    model.schedule(at);
                }
                Op::Advance(delta) => {
                    let now = model.horizon.saturating_add(delta);
                    wheel.advance_to(now);
                    model.advance_to(now);
                }
            }
            prop_assert_eq!(wheel.upcoming(), model.upcoming());
            prop_assert_eq!(wheel.horizon(), model.horizon);
            if let Some(next) = wheel.upcoming() {
                prop_assert!(next > wheel.horizon(), "event at or before the horizon");
            }
        }
    }

    /// Events scheduled at or before the horizon are dropped and can never
    /// surface later, even after further advances.
    #[test]
    fn wheel_never_schedules_into_the_past(
        horizon in 1u64..1000,
        offsets in proptest::collection::vec(0u64..50, 1..20),
    ) {
        let mut wheel = EventWheel::new();
        wheel.advance_to(horizon);
        for off in offsets {
            wheel.schedule(horizon - off.min(horizon));
        }
        prop_assert_eq!(wheel.upcoming(), None);
        wheel.advance_to(horizon + 1_000);
        prop_assert_eq!(wheel.upcoming(), None);
        prop_assert!(wheel.is_empty());
    }

    /// `record_span(obs, n)` is indistinguishable from `n` individual
    /// `record(obs)` calls — counters, histograms, and the rendered JSON —
    /// and the conservation identity survives the replay.
    #[test]
    fn span_replay_conserves_attribution(
        spans in proptest::collection::vec((obs_seed(), 1u64..200), 1..30),
    ) {
        let mut bulk = Recorder::new();
        let mut naive = Recorder::new();
        for (seed, span) in spans {
            let obs = obs_from(seed);
            bulk.record_span(&obs, span);
            for _ in 0..span {
                naive.record(&obs);
            }
        }
        prop_assert_eq!(bulk.cycles(), naive.cycles());
        prop_assert_eq!(bulk.useful_cycles(), naive.useful_cycles());
        for &cause in StallCause::ALL.iter() {
            prop_assert_eq!(bulk.stall_cycles(cause), naive.stall_cycles(cause));
        }
        let attributed: u64 = StallCause::ALL.iter().map(|&c| bulk.stall_cycles(c)).sum();
        prop_assert_eq!(bulk.useful_cycles() + attributed, bulk.cycles());
        prop_assert_eq!(bulk.to_json().render(), naive.to_json().render());
    }
}
