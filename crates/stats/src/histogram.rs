//! Exact integer-valued histograms with exact on-demand summary statistics.

use crate::Json;

/// A histogram over small non-negative integer observations (window access
/// counts, per-cycle occupancies).
///
/// All state is exact integer accumulators — bin counts plus a running
/// total — and the summary statistics (mean, population stddev) are
/// computed on demand from exact integer sums. That makes every recording
/// order-independent: [`Histogram::record_n`] of `n` identical samples is
/// bit-identical to `n` sequential [`Histogram::record`] calls, which the
/// event-driven timing core relies on when it replays a fast-forwarded
/// span of identical cycles in one bulk update.
#[derive(Clone, Default, Debug)]
pub struct Histogram {
    bins: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value: usize) {
        self.record_n(value, 1);
    }

    /// Records `count` identical observations in one exact bulk update —
    /// bit-identical to calling [`Histogram::record`] `count` times.
    pub fn record_n(&mut self, value: usize, count: u64) {
        if count == 0 {
            return;
        }
        if value >= self.bins.len() {
            self.bins.resize(value + 1, 0);
        }
        self.bins[value] += count;
        self.total += count;
    }

    /// Count in bin `value`.
    pub fn count(&self, value: usize) -> u64 {
        self.bins.get(value).copied().unwrap_or(0)
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Exact sums `(Σ value·count, Σ value²·count)` over all bins.
    fn sums(&self) -> (u128, u128) {
        let mut sum = 0u128;
        let mut sum_sq = 0u128;
        for (v, &c) in self.bins.iter().enumerate() {
            if c > 0 {
                let v = v as u128;
                let c = u128::from(c);
                sum += v * c;
                sum_sq += v * v * c;
            }
        }
        (sum, sum_sq)
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let (sum, _) = self.sums();
        sum as f64 / self.total as f64
    }

    /// Population standard deviation of the observations (0 when empty).
    pub fn population_stddev(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let (sum, sum_sq) = self.sums();
        let n = self.total as f64;
        let mean = sum as f64 / n;
        let variance = (sum_sq as f64 / n - mean * mean).max(0.0);
        variance.sqrt()
    }

    /// The largest value observed, or `None` when empty.
    pub fn max_value(&self) -> Option<usize> {
        if self.bins.is_empty() {
            None
        } else {
            Some(self.bins.len() - 1)
        }
    }

    /// Iterates `(value, count)` pairs for non-empty bins.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(v, &c)| (v, c))
    }

    /// Folds another histogram into this one, bin by bin.
    pub fn merge(&mut self, other: &Histogram) {
        if other.bins.len() > self.bins.len() {
            self.bins.resize(other.bins.len(), 0);
        }
        for (bin, &count) in self.bins.iter_mut().zip(&other.bins) {
            *bin += count;
        }
        self.total += other.total;
    }

    /// Renders the histogram as a JSON object:
    /// `{"total", "mean", "stddev", "max", "bins": [[value, count], ...]}`
    /// with only non-empty bins listed.
    pub fn to_json(&self) -> Json {
        let bins: Vec<Json> = self
            .iter()
            .map(|(v, c)| Json::Arr(vec![v.into(), c.into()]))
            .collect();
        Json::obj([
            ("total", Json::from(self.total())),
            ("mean", Json::from(self.mean())),
            ("stddev", Json::from(self.population_stddev())),
            ("max", Json::from(self.max_value().unwrap_or(0))),
            ("bins", Json::Arr(bins)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_and_moments_agree() {
        let mut h = Histogram::new();
        for v in [0, 1, 1, 3, 3, 3] {
            h.record(v);
        }
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(2), 0);
        assert_eq!(h.count(3), 3);
        assert_eq!(h.total(), 6);
        assert_eq!(h.max_value(), Some(3));
        assert!((h.mean() - 11.0 / 6.0).abs() < 1e-12);
        let pairs: Vec<(usize, u64)> = h.iter().collect();
        assert_eq!(pairs, vec![(0, 1), (1, 2), (3, 3)]);
    }

    #[test]
    fn record_n_is_bit_identical_to_sequential_records() {
        let mut bulk = Histogram::new();
        let mut sequential = Histogram::new();
        for (v, n) in [(3, 1000), (0, 7), (12, 1), (3, 0)] {
            bulk.record_n(v, n);
            for _ in 0..n {
                sequential.record(v);
            }
        }
        assert_eq!(bulk.total(), sequential.total());
        let lhs: Vec<(usize, u64)> = bulk.iter().collect();
        let rhs: Vec<(usize, u64)> = sequential.iter().collect();
        assert_eq!(lhs, rhs);
        // Exact accumulators: the rendered floats are bit-identical too.
        assert_eq!(bulk.to_json().render(), sequential.to_json().render());
        assert_eq!(bulk.mean().to_bits(), sequential.mean().to_bits());
        assert_eq!(
            bulk.population_stddev().to_bits(),
            sequential.population_stddev().to_bits()
        );
    }

    #[test]
    fn stddev_matches_direct_computation() {
        let mut h = Histogram::new();
        for v in [2, 4, 4, 4, 5, 5, 7, 9] {
            h.record(v);
        }
        assert!((h.mean() - 5.0).abs() < 1e-12);
        assert!((h.population_stddev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let mut whole = Histogram::new();
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for (i, v) in [5, 0, 2, 2, 9, 1, 0, 4].into_iter().enumerate() {
            whole.record(v);
            if i < 3 {
                left.record(v)
            } else {
                right.record(v)
            }
        }
        left.merge(&right);
        assert_eq!(left.total(), whole.total());
        assert_eq!(left.max_value(), whole.max_value());
        let lhs: Vec<(usize, u64)> = left.iter().collect();
        let rhs: Vec<(usize, u64)> = whole.iter().collect();
        assert_eq!(lhs, rhs);
        assert_eq!(left.mean().to_bits(), whole.mean().to_bits());
    }

    #[test]
    fn json_round_trips() {
        let mut h = Histogram::new();
        for v in [1, 1, 4] {
            h.record(v);
        }
        let rendered = h.to_json().render();
        let parsed = Json::parse(&rendered).unwrap();
        assert_eq!(parsed.get("total").and_then(Json::as_u64), Some(3));
        assert_eq!(parsed.get("max").and_then(Json::as_u64), Some(4));
        let bins = parsed.get("bins").and_then(Json::as_array).unwrap();
        assert_eq!(bins.len(), 2);
        assert_eq!(bins[0].as_array().unwrap()[1].as_u64(), Some(2));
    }

    #[test]
    fn empty_histogram_json() {
        let h = Histogram::new();
        let j = h.to_json();
        assert_eq!(j.get("total").and_then(Json::as_u64), Some(0));
        let bins = j.get("bins").and_then(Json::as_array).unwrap();
        assert!(bins.is_empty());
    }
}
