//! Exact integer-valued histograms with streaming summary statistics.

use crate::{Json, Moments};

/// A histogram over small non-negative integer observations (window access
/// counts, per-cycle occupancies), retaining exact bin counts alongside
/// streaming moments.
#[derive(Clone, Default, Debug)]
pub struct Histogram {
    bins: Vec<u64>,
    moments: Moments,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value: usize) {
        if value >= self.bins.len() {
            self.bins.resize(value + 1, 0);
        }
        self.bins[value] += 1;
        self.moments.push(value as f64);
    }

    /// Count in bin `value`.
    pub fn count(&self, value: usize) -> u64 {
        self.bins.get(value).copied().unwrap_or(0)
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.moments.count()
    }

    /// Streaming moments over the observations.
    pub fn moments(&self) -> &Moments {
        &self.moments
    }

    /// The largest value observed, or `None` when empty.
    pub fn max_value(&self) -> Option<usize> {
        if self.bins.is_empty() {
            None
        } else {
            Some(self.bins.len() - 1)
        }
    }

    /// Iterates `(value, count)` pairs for non-empty bins.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(v, &c)| (v, c))
    }

    /// Folds another histogram into this one, bin by bin.
    pub fn merge(&mut self, other: &Histogram) {
        if other.bins.len() > self.bins.len() {
            self.bins.resize(other.bins.len(), 0);
        }
        for (bin, &count) in self.bins.iter_mut().zip(&other.bins) {
            *bin += count;
        }
        self.moments.merge(&other.moments);
    }

    /// Renders the histogram as a JSON object:
    /// `{"total", "mean", "stddev", "max", "bins": [[value, count], ...]}`
    /// with only non-empty bins listed.
    pub fn to_json(&self) -> Json {
        let bins: Vec<Json> = self
            .iter()
            .map(|(v, c)| Json::Arr(vec![v.into(), c.into()]))
            .collect();
        Json::obj([
            ("total", Json::from(self.total())),
            ("mean", Json::from(self.moments.mean())),
            ("stddev", Json::from(self.moments.population_stddev())),
            ("max", Json::from(self.max_value().unwrap_or(0))),
            ("bins", Json::Arr(bins)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_and_moments_agree() {
        let mut h = Histogram::new();
        for v in [0, 1, 1, 3, 3, 3] {
            h.record(v);
        }
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(2), 0);
        assert_eq!(h.count(3), 3);
        assert_eq!(h.total(), 6);
        assert_eq!(h.max_value(), Some(3));
        assert!((h.moments().mean() - 11.0 / 6.0).abs() < 1e-12);
        let pairs: Vec<(usize, u64)> = h.iter().collect();
        assert_eq!(pairs, vec![(0, 1), (1, 2), (3, 3)]);
    }

    #[test]
    fn merge_equals_sequential() {
        let mut whole = Histogram::new();
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for (i, v) in [5, 0, 2, 2, 9, 1, 0, 4].into_iter().enumerate() {
            whole.record(v);
            if i < 3 {
                left.record(v)
            } else {
                right.record(v)
            }
        }
        left.merge(&right);
        assert_eq!(left.total(), whole.total());
        assert_eq!(left.max_value(), whole.max_value());
        let lhs: Vec<(usize, u64)> = left.iter().collect();
        let rhs: Vec<(usize, u64)> = whole.iter().collect();
        assert_eq!(lhs, rhs);
        assert!((left.moments().mean() - whole.moments().mean()).abs() < 1e-12);
    }

    #[test]
    fn json_round_trips() {
        let mut h = Histogram::new();
        for v in [1, 1, 4] {
            h.record(v);
        }
        let rendered = h.to_json().render();
        let parsed = Json::parse(&rendered).unwrap();
        assert_eq!(parsed.get("total").and_then(Json::as_u64), Some(3));
        assert_eq!(parsed.get("max").and_then(Json::as_u64), Some(4));
        let bins = parsed.get("bins").and_then(Json::as_array).unwrap();
        assert_eq!(bins.len(), 2);
        assert_eq!(bins[0].as_array().unwrap()[1].as_u64(), Some(2));
    }

    #[test]
    fn empty_histogram_json() {
        let h = Histogram::new();
        let j = h.to_json();
        assert_eq!(j.get("total").and_then(Json::as_u64), Some(0));
        let bins = j.get("bins").and_then(Json::as_array).unwrap();
        assert!(bins.is_empty());
    }
}
