//! Streaming moments.

/// Streaming mean and variance via Welford's algorithm.
///
/// Numerically stable for the hundreds of millions of window samples the
/// Table 2 profiler feeds it.
#[derive(Clone, Copy, Default, Debug)]
pub struct Moments {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Moments {
    /// Creates an empty accumulator.
    pub fn new() -> Moments {
        Moments {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when empty).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation — the paper's Table 2 burstiness metric.
    pub fn population_stddev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Moments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The paper's "strictly bursty" predicate: mean < standard deviation.
    pub fn is_strictly_bursty(&self) -> bool {
        self.mean() < self.population_stddev()
    }
}

impl Extend<f64> for Moments {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Moments {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Moments {
        let mut m = Moments::new();
        m.extend(iter);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_mean_and_stddev() {
        let m: Moments = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(m.count(), 8);
        assert!((m.mean() - 5.0).abs() < 1e-12);
        assert!((m.population_stddev() - 2.0).abs() < 1e-12);
        assert_eq!(m.min(), 2.0);
        assert_eq!(m.max(), 9.0);
    }

    #[test]
    fn empty_moments_are_zero() {
        let m = Moments::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.population_stddev(), 0.0);
        assert_eq!(m.count(), 0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let whole: Moments = xs.iter().copied().collect();
        let left: Moments = xs[..37].iter().copied().collect();
        let mut merged = left;
        let right: Moments = xs[37..].iter().copied().collect();
        merged.merge(&right);
        assert_eq!(merged.count(), whole.count());
        assert!((merged.mean() - whole.mean()).abs() < 1e-9);
        assert!((merged.population_stddev() - whole.population_stddev()).abs() < 1e-9);
    }

    #[test]
    fn strictly_bursty_predicate() {
        // Clustered: many zeros, a few large values → stddev > mean.
        let bursty: Moments = std::iter::repeat_n(0.0, 95)
            .chain(std::iter::repeat_n(20.0, 5))
            .collect();
        assert!(bursty.is_strictly_bursty());
        // Constant stream → stddev 0 < mean.
        let steady: Moments = std::iter::repeat_n(5.0, 100).collect();
        assert!(!steady.is_strictly_bursty());
    }
}
