//! Streaming moments and histograms.

/// Streaming mean and variance via Welford's algorithm.
///
/// Numerically stable for the hundreds of millions of window samples the
/// Table 2 profiler feeds it.
#[derive(Clone, Copy, Default, Debug)]
pub struct Moments {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Moments {
    /// Creates an empty accumulator.
    pub fn new() -> Moments {
        Moments {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when empty).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation — the paper's Table 2 burstiness metric.
    pub fn population_stddev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Moments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The paper's "strictly bursty" predicate: mean < standard deviation.
    pub fn is_strictly_bursty(&self) -> bool {
        self.mean() < self.population_stddev()
    }
}

impl Extend<f64> for Moments {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Moments {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Moments {
        let mut m = Moments::new();
        m.extend(iter);
        m
    }
}

/// A histogram over small non-negative integer observations (window access
/// counts), retaining exact bin counts alongside streaming moments.
#[derive(Clone, Default, Debug)]
pub struct Histogram {
    bins: Vec<u64>,
    moments: Moments,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value: usize) {
        if value >= self.bins.len() {
            self.bins.resize(value + 1, 0);
        }
        self.bins[value] += 1;
        self.moments.push(value as f64);
    }

    /// Count in bin `value`.
    pub fn count(&self, value: usize) -> u64 {
        self.bins.get(value).copied().unwrap_or(0)
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.moments.count()
    }

    /// Streaming moments over the observations.
    pub fn moments(&self) -> &Moments {
        &self.moments
    }

    /// The largest value observed, or `None` when empty.
    pub fn max_value(&self) -> Option<usize> {
        if self.bins.is_empty() {
            None
        } else {
            Some(self.bins.len() - 1)
        }
    }

    /// Iterates `(value, count)` pairs for non-empty bins.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(v, &c)| (v, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_mean_and_stddev() {
        let m: Moments = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(m.count(), 8);
        assert!((m.mean() - 5.0).abs() < 1e-12);
        assert!((m.population_stddev() - 2.0).abs() < 1e-12);
        assert_eq!(m.min(), 2.0);
        assert_eq!(m.max(), 9.0);
    }

    #[test]
    fn empty_moments_are_zero() {
        let m = Moments::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.population_stddev(), 0.0);
        assert_eq!(m.count(), 0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let whole: Moments = xs.iter().copied().collect();
        let left: Moments = xs[..37].iter().copied().collect();
        let mut merged = left;
        let right: Moments = xs[37..].iter().copied().collect();
        merged.merge(&right);
        assert_eq!(merged.count(), whole.count());
        assert!((merged.mean() - whole.mean()).abs() < 1e-9);
        assert!((merged.population_stddev() - whole.population_stddev()).abs() < 1e-9);
    }

    #[test]
    fn strictly_bursty_predicate() {
        // Clustered: many zeros, a few large values → stddev > mean.
        let bursty: Moments = std::iter::repeat_n(0.0, 95)
            .chain(std::iter::repeat_n(20.0, 5))
            .collect();
        assert!(bursty.is_strictly_bursty());
        // Constant stream → stddev 0 < mean.
        let steady: Moments = std::iter::repeat_n(5.0, 100).collect();
        assert!(!steady.is_strictly_bursty());
    }

    #[test]
    fn histogram_counts_and_moments_agree() {
        let mut h = Histogram::new();
        for v in [0, 1, 1, 3, 3, 3] {
            h.record(v);
        }
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(2), 0);
        assert_eq!(h.count(3), 3);
        assert_eq!(h.total(), 6);
        assert_eq!(h.max_value(), Some(3));
        assert!((h.moments().mean() - 11.0 / 6.0).abs() < 1e-12);
        let pairs: Vec<(usize, u64)> = h.iter().collect();
        assert_eq!(pairs, vec![(0, 1), (1, 2), (3, 3)]);
    }
}
