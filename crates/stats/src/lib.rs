//! # arl-stats — statistics and report rendering
//!
//! Small utilities shared by the profilers and the experiment harness:
//!
//! * [`Moments`] — streaming mean/variance (Welford), used for the
//!   sliding-window burstiness statistics of Table 2.
//! * [`Histogram`] — integer-valued histogram with summary statistics.
//! * [`TableBuilder`] — aligned ASCII tables for the `table*` binaries.
//! * [`BarChart`] — ASCII horizontal bar charts for the `figure*` binaries.
//! * [`Json`] — dependency-free JSON value tree, serializer and parser,
//!   backing the harness's `BENCH_*.json` run records.
//!
//! ```
//! use arl_stats::Moments;
//!
//! let mut m = Moments::new();
//! for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
//!     m.push(x);
//! }
//! assert_eq!(m.mean(), 5.0);
//! assert_eq!(m.population_stddev(), 2.0);
//! ```

mod chart;
mod histogram;
mod json;
mod moments;
mod table;

pub use chart::BarChart;
pub use histogram::Histogram;
pub use json::{Json, JsonError};
pub use moments::Moments;
pub use table::TableBuilder;
