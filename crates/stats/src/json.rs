//! Dependency-free JSON: a value tree, a serializer, and a parser.
//!
//! The experiment harness (`arl-bench`) emits structured run records as
//! `BENCH_<experiment>.json` files so perf trajectories can be tracked by
//! machines, not just read off ASCII tables. The build environment has no
//! registry access, so this module hand-rolls the (small) subset of JSON
//! the harness needs: objects with ordered keys, arrays, strings, numbers,
//! booleans and null.
//!
//! ```
//! use arl_stats::Json;
//!
//! let v = Json::obj([
//!     ("name", Json::from("figure8")),
//!     ("cells", Json::from(96u64)),
//! ]);
//! let text = v.render();
//! assert_eq!(text, r#"{"name":"figure8","cells":96}"#);
//! assert_eq!(Json::parse(&text).unwrap(), v);
//! ```

use std::fmt;

/// A JSON value. Object keys keep insertion order so serialization is
/// deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integers survive a round-trip exactly up to 2^53.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>, I: IntoIterator<Item = (K, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(value)
    }
}

/// Shortest representation that round-trips: integers have no decimal
/// point; non-finite values (which JSON cannot express) become `null`.
fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        write!(out, "{}", n as i64).unwrap();
    } else {
        // `{}` on f64 is the shortest string that parses back exactly.
        write!(out, "{n}").unwrap();
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).unwrap(),
            c => out.push(c),
        }
    }
    out.push('"');
}

use std::fmt::Write as _;

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

/// A parse failure, with the byte offset where it happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are rejected rather than paired —
                            // the serializer never emits them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the longest run of plain bytes in one step.
                    // The run's delimiters (`"`, `\`, control bytes) are
                    // all ASCII and never occur inside a multi-byte UTF-8
                    // sequence, so the run slices cleanly out of the
                    // (already valid UTF-8) input.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' || b < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    if self.pos == start {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (v, text) in [
            (Json::Null, "null"),
            (Json::Bool(true), "true"),
            (Json::Bool(false), "false"),
            (Json::Num(0.0), "0"),
            (Json::Num(-17.0), "-17"),
            (Json::Num(2.5), "2.5"),
            (Json::Str("hi".into()), r#""hi""#),
        ] {
            assert_eq!(v.render(), text);
            assert_eq!(Json::parse(text).unwrap(), v);
        }
    }

    #[test]
    fn float_formatting_is_shortest_roundtrip() {
        assert_eq!(Json::Num(0.1).render(), "0.1");
        assert_eq!(Json::Num(1.0 / 3.0).render(), "0.3333333333333333");
        assert_eq!(Json::Num(1e20).render(), "100000000000000000000");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
        // Integers up to 2^53 are exact.
        let big = (1u64 << 53) - 1;
        let rendered = Json::from(big).render();
        assert_eq!(rendered, big.to_string());
        assert_eq!(Json::parse(&rendered).unwrap().as_u64(), Some(big));
    }

    #[test]
    fn string_escaping_round_trips() {
        let nasty = "quote\" slash\\ newline\n tab\t cr\r nul\u{1} unicode→é";
        let v = Json::Str(nasty.into());
        let text = v.render();
        assert!(text.contains("\\\"") && text.contains("\\\\") && text.contains("\\n"));
        assert!(text.contains("\\u0001"));
        assert_eq!(Json::parse(&text).unwrap(), v);
        // Explicit \u escapes parse too.
        assert_eq!(
            Json::parse(r#""\u0041\u00e9""#).unwrap(),
            Json::Str("Aé".into())
        );
    }

    #[test]
    fn nested_records_round_trip() {
        let v = Json::obj([
            ("experiment", Json::from("figure8")),
            ("threads", Json::from(4u64)),
            (
                "records",
                Json::Arr(vec![
                    Json::obj([
                        ("workload", Json::from("go")),
                        ("cycles", Json::from(123456u64)),
                        ("ipc", Json::from(3.25)),
                        ("accuracy", Json::from(None::<f64>)),
                    ]),
                    Json::obj([("workload", Json::from("swim")), ("ok", Json::from(true))]),
                ]),
            ),
        ]);
        let text = v.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
        // Key order is preserved through serialize → parse.
        assert_eq!(back.render(), text);
        // Navigation helpers.
        let records = back.get("records").unwrap().as_array().unwrap();
        assert_eq!(records[0].get("workload").unwrap().as_str(), Some("go"));
        assert_eq!(records[0].get("cycles").unwrap().as_u64(), Some(123456));
        assert_eq!(records[0].get("accuracy"), Some(&Json::Null));
    }

    #[test]
    fn parser_accepts_whitespace_and_rejects_garbage() {
        let v = Json::parse(" { \"a\" : [ 1 , 2.5e1 , null ] } ").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(25.0)
        );
        for bad in [
            "", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"\\x\"", "{a:1}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn long_strings_parse_in_linear_time_with_exact_content() {
        // Strings are consumed as byte runs between delimiters (the old
        // char-at-a-time loop revalidated the whole tail per character,
        // O(n²) — a multi-megabyte checkpoint blob took minutes). Pin the
        // run logic on escapes, multi-byte characters, and delimiters.
        let s = "plain μλti-byte → ok \"quoted\" back\\slash\nnewline\ttab".to_string()
            + &"0123456789abcdef".repeat(64 * 1024);
        let text = Json::from(s.clone()).render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.as_str(), Some(s.as_str()));
        // Raw control bytes are still rejected, mid-run included.
        assert!(Json::parse("\"abc\u{1}def\"").is_err());
    }
}
