//! Aligned ASCII table rendering.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Align {
    Left,
    Right,
}

/// Builds aligned, monospace tables like the ones the paper prints.
///
/// ```
/// use arl_stats::TableBuilder;
///
/// let mut t = TableBuilder::new(&["Benchmark", "IPC"]);
/// t.row(&["go", "2.31"]);
/// t.row(&["gcc", "2.58"]);
/// let s = t.render();
/// assert!(s.contains("Benchmark"));
/// assert!(s.lines().count() >= 4);
/// ```
#[derive(Clone, Debug)]
pub struct TableBuilder {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    aligns: Vec<Align>,
}

impl TableBuilder {
    /// Creates a table with the given column headers. The first column is
    /// left-aligned, the rest right-aligned (the common numeric layout).
    pub fn new(headers: &[&str]) -> TableBuilder {
        let aligns = (0..headers.len())
            .map(|i| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        TableBuilder {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            aligns,
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row's arity differs from the header's.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) -> &mut TableBuilder {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity must match header arity"
        );
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_string()).collect());
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a header rule.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let emit_row = |out: &mut String, cells: &[String]| {
            for i in 0..ncols {
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = widths[i] - cells[i].chars().count();
                match self.aligns[i] {
                    Align::Left => {
                        out.push_str(&cells[i]);
                        if i + 1 < ncols {
                            out.extend(std::iter::repeat_n(' ', pad));
                        }
                    }
                    Align::Right => {
                        out.extend(std::iter::repeat_n(' ', pad));
                        out.push_str(&cells[i]);
                    }
                }
            }
            out.push('\n');
        };
        emit_row(&mut out, &self.headers);
        let rule_len = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(rule_len));
        for row in &self.rows {
            emit_row(&mut out, row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_align() {
        let mut t = TableBuilder::new(&["name", "value"]);
        t.row(&["a", "1"]);
        t.row(&["longer", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows same width (right-aligned numeric column).
        assert!(lines[2].ends_with("    1"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = TableBuilder::new(&["a", "b"]);
        t.row(&["only one"]);
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = TableBuilder::new(&["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.render().lines().count(), 2);
    }
}
