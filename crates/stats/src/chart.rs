//! ASCII bar charts for the `figure*` harness binaries.

use std::fmt::Write as _;

/// Renders grouped horizontal bar charts — one labelled bar per (row,
/// series) pair — mirroring the paper's grouped-bar figures in a terminal.
///
/// ```
/// use arl_stats::BarChart;
///
/// let mut c = BarChart::new("speedup over (2+0)", 40);
/// c.bar("go: (3+3)", 1.28);
/// c.bar("go: (16+0)", 1.33);
/// let s = c.render();
/// assert!(s.contains("go: (3+3)"));
/// ```
#[derive(Clone, Debug)]
pub struct BarChart {
    title: String,
    width: usize,
    bars: Vec<(String, f64)>,
}

impl BarChart {
    /// Creates a chart with a title and a maximum bar width in characters.
    pub fn new(title: &str, width: usize) -> BarChart {
        BarChart {
            title: title.to_string(),
            width: width.max(1),
            bars: Vec::new(),
        }
    }

    /// Appends a labelled bar.
    pub fn bar(&mut self, label: &str, value: f64) -> &mut BarChart {
        self.bars.push((label.to_string(), value));
        self
    }

    /// Inserts a blank separator line between groups.
    pub fn gap(&mut self) -> &mut BarChart {
        self.bars.push((String::new(), f64::NAN));
        self
    }

    /// Number of bars (separators excluded).
    pub fn len(&self) -> usize {
        self.bars.iter().filter(|(_, v)| !v.is_nan()).count()
    }

    /// Whether the chart has no bars.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the chart; bars scale to the maximum value.
    pub fn render(&self) -> String {
        let max = self
            .bars
            .iter()
            .filter(|(_, v)| !v.is_nan())
            .map(|&(_, v)| v)
            .fold(0.0f64, f64::max);
        let label_w = self
            .bars
            .iter()
            .map(|(l, _)| l.chars().count())
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        for (label, value) in &self.bars {
            if value.is_nan() {
                out.push('\n');
                continue;
            }
            let n = if max > 0.0 {
                ((value / max) * self.width as f64).round() as usize
            } else {
                0
            };
            let _ = writeln!(
                out,
                "{label:<label_w$} |{} {value:.3}",
                "#".repeat(n),
                label_w = label_w
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_max() {
        let mut c = BarChart::new("t", 10);
        c.bar("half", 0.5).bar("full", 1.0);
        let s = c.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].contains(&"#".repeat(5)));
        assert!(!lines[1].contains(&"#".repeat(6)));
        assert!(lines[2].contains(&"#".repeat(10)));
    }

    #[test]
    fn gap_produces_blank_line() {
        let mut c = BarChart::new("t", 10);
        c.bar("a", 1.0).gap().bar("b", 2.0);
        assert_eq!(c.len(), 2);
        assert_eq!(c.render().lines().count(), 4);
    }

    #[test]
    fn zero_values_render_without_panic() {
        let mut c = BarChart::new("t", 10);
        c.bar("z", 0.0);
        assert!(c.render().contains("0.000"));
    }
}
