//! Compiler hints (paper Section 3.5.2, Figure 6).
//!
//! "This section studies the effects of augmenting each static memory
//! instruction with a tag that indicates if it is a stack access, a
//! non-stack access, or that the compiler can not distinguish."
//!
//! Two hint sources are provided, matching the paper:
//!
//! * [`HintTable::from_program`] — the Figure 6 static analysis
//!   ([`classify_mem`]), computed over the storage-class knowledge
//!   ([`Provenance`]) the program builder records (the builder plays the
//!   role of the compiler front end).
//! * [`HintTable::from_profile`] — profile-derived tags, the paper's upper
//!   bound: "we used profiled region information gathered from program
//!   runs... an instruction can be classified by a compiler if it is shown
//!   to access only a single region".

use std::collections::HashMap;

use arl_asm::{Program, Provenance};
use arl_mem::RegionSet;
use arl_sim::RegionProfiler;

/// A per-instruction compiler tag: `MT_STACK`, `MT_NONSTACK`, or
/// `MT_UNKNOWN` in the paper's Figure 6 vocabulary.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemHint {
    /// The instruction always accesses the stack.
    Stack,
    /// The instruction never accesses the stack.
    NonStack,
    /// The compiler cannot tell; fall through to dynamic prediction.
    Unknown,
}

impl MemHint {
    /// Whether the tag is definite (bypasses the predictor).
    pub fn is_definite(self) -> bool {
        self != MemHint::Unknown
    }
}

/// The Figure 6 `classify_mem` algorithm over the builder's storage-class
/// knowledge:
///
/// ```text
/// if (is_local_var)            return MT_STACK;
/// if (is_static_var)           return MT_NONSTACK;
/// for defs in UD-chain:        // summarized by Provenance
///   function param → UNKNOWN; mixed → UNKNOWN;
///   all point to stack → STACK; all point to non-stack → NONSTACK.
/// ```
pub fn classify_mem(prov: Provenance) -> MemHint {
    match prov {
        Provenance::LocalVar | Provenance::PointsToStack => MemHint::Stack,
        Provenance::StaticVar | Provenance::HeapBlock => MemHint::NonStack,
        Provenance::FunctionParam | Provenance::Mixed => MemHint::Unknown,
    }
}

/// Per-pc hint tags from either the static Figure 6 analysis or a profile.
#[derive(Clone, Debug, Default)]
pub struct HintTable {
    tags: HashMap<u64, MemHint>,
}

impl HintTable {
    /// Builds hints by running [`classify_mem`] over every static memory
    /// instruction of a linked program (the realizable compiler analysis).
    pub fn from_program(program: &Program) -> HintTable {
        let tags = program
            .static_mem_instructions()
            .map(|(pc, _info, prov)| (pc, classify_mem(prov)))
            .collect();
        HintTable { tags }
    }

    /// Builds hints from a finished profiling run (the paper's idealized
    /// upper bound).
    pub fn from_profile(profile: &RegionProfiler) -> HintTable {
        let tags = profile
            .iter()
            .map(|(pc, set, _count)| (pc, Self::tag_for(set)))
            .collect();
        HintTable { tags }
    }

    /// Builds hints from explicit per-pc tags (tests, external tooling).
    pub fn from_map(tags: HashMap<u64, MemHint>) -> HintTable {
        HintTable { tags }
    }

    /// The tag a region set collapses to: definite when the instruction
    /// stayed on one side of the stack / non-stack divide (`D`, `H` and
    /// `D/H` are all non-stack; only sets touching both sides are unknown).
    pub fn tag_for(set: RegionSet) -> MemHint {
        match (set.touches_stack(), set.touches_non_stack()) {
            (true, false) => MemHint::Stack,
            (false, true) => MemHint::NonStack,
            _ => MemHint::Unknown,
        }
    }

    /// The hint for the instruction at `pc` (`Unknown` when untagged).
    pub fn hint(&self, pc: u64) -> MemHint {
        self.tags.get(&pc).copied().unwrap_or(MemHint::Unknown)
    }

    /// Number of definite tags.
    pub fn definite_count(&self) -> usize {
        self.tags.values().filter(|t| t.is_definite()).count()
    }

    /// Number of tags of any kind.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use arl_mem::Region;

    #[test]
    fn figure6_mapping() {
        assert_eq!(classify_mem(Provenance::LocalVar), MemHint::Stack);
        assert_eq!(classify_mem(Provenance::PointsToStack), MemHint::Stack);
        assert_eq!(classify_mem(Provenance::StaticVar), MemHint::NonStack);
        assert_eq!(classify_mem(Provenance::HeapBlock), MemHint::NonStack);
        assert_eq!(classify_mem(Provenance::FunctionParam), MemHint::Unknown);
        assert_eq!(classify_mem(Provenance::Mixed), MemHint::Unknown);
    }

    #[test]
    fn tag_for_region_sets() {
        assert_eq!(
            HintTable::tag_for(RegionSet::only(Region::Stack)),
            MemHint::Stack
        );
        assert_eq!(
            HintTable::tag_for(RegionSet::only(Region::Data)),
            MemHint::NonStack
        );
        // D/H stays non-stack even though it is multi-region.
        let dh: RegionSet = [Region::Data, Region::Heap].into_iter().collect();
        assert_eq!(HintTable::tag_for(dh), MemHint::NonStack);
        // D/S crosses the divide.
        let ds: RegionSet = [Region::Data, Region::Stack].into_iter().collect();
        assert_eq!(HintTable::tag_for(ds), MemHint::Unknown);
        assert_eq!(HintTable::tag_for(RegionSet::EMPTY), MemHint::Unknown);
    }

    #[test]
    fn unseen_pc_is_unknown() {
        let h = HintTable::default();
        assert!(h.is_empty());
        assert_eq!(h.hint(0x40_0000), MemHint::Unknown);
        assert_eq!(h.definite_count(), 0);
    }

    #[test]
    fn from_program_tags_every_mem_instruction() {
        use arl_asm::{FunctionBuilder, ProgramBuilder};
        use arl_isa::Gpr;
        let mut pb = ProgramBuilder::new();
        let g = pb.global_zeroed("g", 8);
        let mut f = FunctionBuilder::new("main");
        let slot = f.local(8);
        f.store_local(Gpr::T0, slot, 0);
        f.load_global(Gpr::T1, g, 0);
        f.load_ptr(Gpr::T2, Gpr::A0, 0, Provenance::FunctionParam);
        pb.add_function(f);
        let p = pb.link("main").unwrap();
        let hints = HintTable::from_program(&p);
        let mem_count = p.static_mem_instructions().count();
        assert_eq!(hints.len(), mem_count);
        // The param deref is the only unknown among the body accesses;
        // prologue/epilogue spills are all definite stack tags.
        assert_eq!(hints.definite_count(), mem_count - 1);
    }
}
