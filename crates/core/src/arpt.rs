//! The Access Region Prediction Table.

use std::collections::HashMap;

use arl_isa::INST_BYTES;

use crate::context::Context;

/// Per-entry state machine of the ARPT.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CounterScheme {
    /// One history bit: predict the last observed region (the paper's best
    /// performer).
    OneBit,
    /// Two-bit saturating counter adding hysteresis (the paper's footnote 8
    /// ablation: "consistently lower than 1-bit").
    TwoBit,
}

/// Table capacity: the paper evaluates an unlimited table (Figure 4,
/// Table 3) and limited tables of 8K–64K entries (Figure 5).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Capacity {
    /// One entry per distinct index — no interference.
    Unlimited,
    /// A direct-indexed table of `2^k` entries, no tags or valid bits
    /// (colliding instructions share an entry).
    Entries(usize),
}

/// The Access Region Prediction Table: tagless, indexed by the
/// instruction's word-pc XOR-folded with optional run-time [`Context`]
/// (Figure 3). Predicts whether a memory instruction will access the stack.
///
/// Cold entries predict **non-stack**, matching static rule 4's default for
/// unrevealed addressing modes. The table is meant to hold only the
/// instructions the static heuristics could not classify (the paper stores
/// nothing for revealed instructions "in order to save space").
#[derive(Clone, Debug)]
pub struct Arpt {
    scheme: CounterScheme,
    context: Context,
    storage: Storage,
    lookups: u64,
    updates: u64,
}

#[derive(Clone, Debug)]
enum Storage {
    Unlimited(HashMap<u64, u8>),
    Limited {
        table: Vec<u8>,
        touched: Vec<bool>,
        occupied: usize,
    },
}

impl Arpt {
    /// Creates an ARPT.
    ///
    /// # Panics
    ///
    /// Panics if a limited capacity is not a power of two.
    pub fn new(scheme: CounterScheme, context: Context, capacity: Capacity) -> Arpt {
        let storage = match capacity {
            Capacity::Unlimited => Storage::Unlimited(HashMap::new()),
            Capacity::Entries(n) => {
                assert!(n.is_power_of_two(), "ARPT capacity must be a power of two");
                Storage::Limited {
                    table: vec![0; n],
                    touched: vec![false; n],
                    occupied: 0,
                }
            }
        };
        Arpt {
            scheme,
            context,
            storage,
            lookups: 0,
            updates: 0,
        }
    }

    /// The paper's Table 4 configuration: 32K 1-bit entries, 8-bit GBH + 7-bit
    /// CID hybrid context.
    pub fn table4() -> Arpt {
        Arpt::new(
            CounterScheme::OneBit,
            Context::HYBRID_8_7,
            Capacity::Entries(1 << 15),
        )
    }

    /// The table key for the instruction at `pc` under run-time context
    /// `(ghr, ra)`: the word-pc XOR the configured [`Context`] value. This is
    /// the pure, capacity-independent part of the index computation, so it
    /// can be precomputed once at trace-capture time and fed back through
    /// [`Arpt::predict_counted_key`]/[`Arpt::update_key`] on every replay.
    pub fn key(&self, pc: u64, ghr: u64, ra: u64) -> u64 {
        (pc / INST_BYTES) ^ self.context.value(ghr, ra)
    }

    fn index(&self, pc: u64, ghr: u64, ra: u64) -> u64 {
        self.fold(self.key(pc, ghr, ra))
    }

    fn fold(&self, key: u64) -> u64 {
        match &self.storage {
            Storage::Unlimited(_) => key,
            Storage::Limited { table, .. } => {
                // XOR-fold the key into the index width so context bits
                // above the table's log2 size still participate (the paper
                // XORs the context *into* the (log N)-bit pc index; plain
                // truncation would discard the GBH field of a wide hybrid
                // context entirely).
                let bits = table.len().trailing_zeros() as u64;
                let mut k = key;
                k ^= k >> bits;
                k ^= k >> (2 * bits);
                k & (table.len() as u64 - 1)
            }
        }
    }

    fn counter(&self, idx: u64) -> u8 {
        match &self.storage {
            Storage::Unlimited(map) => map.get(&idx).copied().unwrap_or(0),
            Storage::Limited { table, .. } => table[idx as usize],
        }
    }

    fn predict_from(&self, counter: u8) -> bool {
        match self.scheme {
            CounterScheme::OneBit => counter != 0,
            CounterScheme::TwoBit => counter >= 2,
        }
    }

    /// Predicts whether the memory instruction at `pc` (with run-time
    /// context `ghr`, `ra`) will access the stack.
    pub fn predict(&self, pc: u64, ghr: u64, ra: u64) -> bool {
        let idx = self.index(pc, ghr, ra);
        self.predict_from(self.counter(idx))
    }

    /// Like [`Arpt::predict`], but counts the lookup (the fetch-stage port).
    pub fn predict_counted(&mut self, pc: u64, ghr: u64, ra: u64) -> bool {
        self.lookups += 1;
        self.predict(pc, ghr, ra)
    }

    /// Like [`Arpt::predict_counted`], but takes a key precomputed with
    /// [`Arpt::key`] (e.g. out of a compiled trace) instead of rederiving it
    /// from `(pc, ghr, ra)`. Counts the lookup identically.
    pub fn predict_counted_key(&mut self, key: u64) -> bool {
        self.lookups += 1;
        self.predict_from(self.counter(self.fold(key)))
    }

    /// Trains the entry with the observed region.
    pub fn update(&mut self, pc: u64, ghr: u64, ra: u64, is_stack: bool) {
        let idx = self.index(pc, ghr, ra);
        self.update_idx(idx, is_stack);
    }

    /// Like [`Arpt::update`], but takes a key precomputed with [`Arpt::key`].
    pub fn update_key(&mut self, key: u64, is_stack: bool) {
        let idx = self.fold(key);
        self.update_idx(idx, is_stack);
    }

    fn update_idx(&mut self, idx: u64, is_stack: bool) {
        self.updates += 1;
        let next = |cur: u8| match self.scheme {
            CounterScheme::OneBit => is_stack as u8,
            CounterScheme::TwoBit => {
                if is_stack {
                    (cur + 1).min(3)
                } else {
                    cur.saturating_sub(1)
                }
            }
        };
        match &mut self.storage {
            Storage::Unlimited(map) => {
                let cur = map.entry(idx).or_insert(0);
                *cur = next(*cur);
            }
            Storage::Limited {
                table,
                touched,
                occupied,
            } => {
                let i = idx as usize;
                table[i] = next(table[i]);
                if !touched[i] {
                    touched[i] = true;
                    *occupied += 1;
                }
            }
        }
    }

    /// Injects a soft error: XORs `mask` (clamped to the counter's two
    /// state bits) into the entry selected by `slot`. The ARPT is tagless,
    /// so a particle strike on either the state bits or the index path is
    /// indistinguishable from corrupting an arbitrary entry — `slot` picks
    /// that entry deterministically (modulo the table size for limited
    /// tables). Used by the fault-injection campaign; never called during
    /// normal simulation.
    pub fn inject_soft_error(&mut self, slot: u64, mask: u8) {
        let mask = mask & 0b11;
        if mask == 0 {
            return;
        }
        match &mut self.storage {
            Storage::Unlimited(map) => {
                let cur = map.entry(slot).or_insert(0);
                *cur ^= mask;
            }
            Storage::Limited {
                table,
                touched,
                occupied,
            } => {
                let i = (slot % table.len() as u64) as usize;
                table[i] ^= mask;
                if !touched[i] {
                    touched[i] = true;
                    *occupied += 1;
                }
            }
        }
    }

    /// Number of entries ever written — Table 3's "entries occupied".
    pub fn occupied_entries(&self) -> usize {
        match &self.storage {
            Storage::Unlimited(map) => map.len(),
            Storage::Limited { occupied, .. } => *occupied,
        }
    }

    /// Table capacity in entries (`None` when unlimited).
    pub fn capacity(&self) -> Option<usize> {
        match &self.storage {
            Storage::Unlimited(_) => None,
            Storage::Limited { table, .. } => Some(table.len()),
        }
    }

    /// Counted fetch-stage lookups.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Training updates performed.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Overwrites the lookup/update counters (checkpoint restore).
    pub fn set_counters(&mut self, lookups: u64, updates: u64) {
        self.lookups = lookups;
        self.updates = updates;
    }

    /// Snapshot of a limited table's storage for checkpointing:
    /// `(counters, touched flags, occupied count)`. `None` for unlimited
    /// storage.
    pub fn export_limited(&self) -> Option<(&[u8], &[bool], usize)> {
        match &self.storage {
            Storage::Unlimited(_) => None,
            Storage::Limited {
                table,
                touched,
                occupied,
            } => Some((table, touched, *occupied)),
        }
    }

    /// Restores a limited table from a checkpoint taken with
    /// [`Arpt::export_limited`]. Returns `false` (leaving the table
    /// untouched) when the storage is unlimited or the lengths do not
    /// match this table's capacity.
    pub fn import_limited(&mut self, table: &[u8], touched: &[bool], occupied: usize) -> bool {
        match &mut self.storage {
            Storage::Unlimited(_) => false,
            Storage::Limited {
                table: cur,
                touched: cur_touched,
                occupied: cur_occupied,
            } => {
                if table.len() != cur.len() || touched.len() != cur_touched.len() {
                    return false;
                }
                cur.copy_from_slice(table);
                cur_touched.copy_from_slice(touched);
                *cur_occupied = occupied;
                true
            }
        }
    }

    /// The configured context scheme.
    pub fn context(&self) -> Context {
        self.context
    }

    /// The configured counter scheme.
    pub fn scheme(&self) -> CounterScheme {
        self.scheme
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PC: u64 = 0x40_0100;

    #[test]
    fn one_bit_tracks_last_region() {
        let mut a = Arpt::new(CounterScheme::OneBit, Context::None, Capacity::Unlimited);
        assert!(!a.predict(PC, 0, 0), "cold entries predict non-stack");
        a.update(PC, 0, 0, true);
        assert!(a.predict(PC, 0, 0));
        a.update(PC, 0, 0, false);
        assert!(!a.predict(PC, 0, 0));
    }

    #[test]
    fn two_bit_has_hysteresis() {
        let mut a = Arpt::new(CounterScheme::TwoBit, Context::None, Capacity::Unlimited);
        a.update(PC, 0, 0, true);
        assert!(!a.predict(PC, 0, 0), "one stack observation is not enough");
        a.update(PC, 0, 0, true);
        assert!(a.predict(PC, 0, 0));
        a.update(PC, 0, 0, true); // saturate at strongly-stack
        a.update(PC, 0, 0, false);
        assert!(a.predict(PC, 0, 0), "hysteresis survives one non-stack");
        a.update(PC, 0, 0, false);
        assert!(!a.predict(PC, 0, 0));
    }

    #[test]
    fn context_separates_aliasing_behaviors() {
        // One instruction alternates region by caller; pc-only indexing
        // mispredicts half the time, CID context learns both.
        let mut plain = Arpt::new(CounterScheme::OneBit, Context::None, Capacity::Unlimited);
        let mut cid = Arpt::new(
            CounterScheme::OneBit,
            Context::Cid { bits: 24 },
            Capacity::Unlimited,
        );
        let callers = [0x40_0200u64, 0x40_0300u64];
        let mut plain_correct = 0;
        let mut cid_correct = 0;
        for round in 0..100 {
            let caller = callers[round % 2];
            let is_stack = round % 2 == 0;
            plain_correct += (plain.predict(PC, 0, caller) == is_stack) as u32;
            cid_correct += (cid.predict(PC, 0, caller) == is_stack) as u32;
            plain.update(PC, 0, caller, is_stack);
            cid.update(PC, 0, caller, is_stack);
        }
        assert!(
            cid_correct >= 98,
            "cid context should nail this: {cid_correct}"
        );
        assert!(plain_correct <= 2, "pc-only must thrash: {plain_correct}");
        assert_eq!(plain.occupied_entries(), 1);
        assert_eq!(cid.occupied_entries(), 2);
    }

    #[test]
    fn limited_table_aliases_by_pigeonhole() {
        let mut a = Arpt::new(CounterScheme::OneBit, Context::None, Capacity::Entries(4));
        // More distinct instructions than entries must share state.
        for i in 0..16u64 {
            a.update(0x40_0000 + i * INST_BYTES, 0, 0, true);
        }
        assert!(a.occupied_entries() <= 4, "at most `capacity` entries");
        assert_eq!(a.capacity(), Some(4));
        // Every one of the 16 pcs now predicts stack through shared entries.
        for i in 0..16u64 {
            assert!(a.predict(0x40_0000 + i * INST_BYTES, 0, 0));
        }
    }

    #[test]
    fn limited_table_keeps_high_context_bits() {
        // The hybrid context's GBH field sits above bit 24; folding must
        // keep it relevant even in a tiny table.
        let mut a = Arpt::new(
            CounterScheme::OneBit,
            Context::HYBRID_8_24,
            Capacity::Entries(1 << 10),
        );
        // Same pc/ra, differing only in branch history: train opposite
        // outcomes; both must be recalled (distinct indices).
        a.update(PC, 0b0000_0001, 0x40_0200, true);
        a.update(PC, 0b0000_0010, 0x40_0200, false);
        assert!(a.predict(PC, 0b0000_0001, 0x40_0200));
        assert!(!a.predict(PC, 0b0000_0010, 0x40_0200));
    }

    #[test]
    fn occupied_counts_distinct_indices() {
        let mut a = Arpt::new(
            CounterScheme::OneBit,
            Context::None,
            Capacity::Entries(1 << 10),
        );
        for i in 0..100u64 {
            a.update(0x40_0000 + i * INST_BYTES, 0, 0, i % 2 == 0);
        }
        assert_eq!(a.occupied_entries(), 100);
        // Re-updating does not double count.
        a.update(0x40_0000, 0, 0, true);
        assert_eq!(a.occupied_entries(), 100);
    }

    #[test]
    fn soft_errors_flip_counter_state() {
        // Unlimited storage with no context: the slot IS the word pc.
        let mut a = Arpt::new(CounterScheme::OneBit, Context::None, Capacity::Unlimited);
        a.update(PC, 0, 0, true);
        assert!(a.predict(PC, 0, 0));
        a.inject_soft_error(PC / INST_BYTES, 0b01);
        assert!(!a.predict(PC, 0, 0), "flipped bit inverts the prediction");
        a.inject_soft_error(PC / INST_BYTES, 0b01);
        assert!(a.predict(PC, 0, 0), "second flip restores it");
        // A zero mask is a no-op.
        a.inject_soft_error(PC / INST_BYTES, 0);
        assert!(a.predict(PC, 0, 0));
    }

    #[test]
    fn soft_errors_wrap_limited_tables() {
        let mut a = Arpt::new(CounterScheme::OneBit, Context::None, Capacity::Entries(4));
        // Slot 5 wraps to entry 1; the strike creates an occupied entry.
        a.inject_soft_error(5, 0b01);
        assert_eq!(a.occupied_entries(), 1);
        // Mask is clamped to the two counter bits (no byte-wide garbage).
        a.inject_soft_error(6, 0xFC);
        assert_eq!(a.occupied_entries(), 1, "clamped-to-zero mask is a no-op");
    }

    #[test]
    fn keyed_api_matches_positional_api() {
        // The compiled-trace fast path feeds precomputed keys back in; it
        // must be indistinguishable from the positional API, counters
        // included.
        let mut a = Arpt::new(
            CounterScheme::OneBit,
            Context::HYBRID_8_7,
            Capacity::Entries(1 << 10),
        );
        let mut b = a.clone();
        for round in 0..200u64 {
            let pc = 0x40_0000 + (round % 37) * INST_BYTES;
            let ghr = round.wrapping_mul(0x9E37);
            let ra = 0x40_0200 + (round % 5) * INST_BYTES;
            let key = a.key(pc, ghr, ra);
            assert_eq!(a.predict_counted(pc, ghr, ra), b.predict_counted_key(key));
            let is_stack = round % 3 == 0;
            a.update(pc, ghr, ra, is_stack);
            b.update_key(key, is_stack);
        }
        assert_eq!(a.lookups(), b.lookups());
        assert_eq!(a.updates(), b.updates());
        assert_eq!(a.occupied_entries(), b.occupied_entries());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_capacity_panics() {
        let _ = Arpt::new(CounterScheme::OneBit, Context::None, Capacity::Entries(100));
    }

    #[test]
    fn table4_configuration() {
        let a = Arpt::table4();
        assert_eq!(a.capacity(), Some(1 << 15));
        assert_eq!(a.scheme(), CounterScheme::OneBit);
        assert_eq!(a.context(), Context::HYBRID_8_7);
    }
}
