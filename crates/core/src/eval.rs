//! Offline evaluation of the prediction pipeline over a functional trace
//! (the measurement behind Figures 4 and 5 and Table 3).

use arl_mem::Region;
use arl_sim::{SourceError, TraceEntry, TraceSource};

use crate::arpt::{Arpt, Capacity, CounterScheme};
use crate::context::Context;
use crate::heuristic::{static_hint, StaticHint};
use crate::hints::{HintTable, MemHint};

/// Which mechanism classified a given dynamic reference.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Source {
    /// A definite compiler hint bypassed prediction.
    Hint,
    /// The addressing mode revealed the region (static rules 1–3).
    Static,
    /// The ARPT predicted it.
    Arpt,
    /// Rule 4's default (predict non-stack) with no ARPT configured.
    Default,
}

impl Source {
    /// All sources, in pipeline priority order.
    pub const ALL: [Source; 4] = [Source::Hint, Source::Static, Source::Arpt, Source::Default];

    fn index(self) -> usize {
        match self {
            Source::Hint => 0,
            Source::Static => 1,
            Source::Arpt => 2,
            Source::Default => 3,
        }
    }
}

/// The dynamic predictor variant being evaluated.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PredictorKind {
    /// Addressing-mode rules only; rule 4 predicts non-stack
    /// (Figure 4's "STATIC" bars).
    StaticOnly,
    /// Static rules backed by a 1-bit ARPT.
    OneBit,
    /// Static rules backed by a 2-bit ARPT (footnote 8 ablation).
    TwoBit,
}

/// Full configuration of one evaluation run.
#[derive(Clone, Debug)]
pub struct EvalConfig {
    /// Predictor variant.
    pub kind: PredictorKind,
    /// ARPT index context (ignored for [`PredictorKind::StaticOnly`]).
    pub context: Context,
    /// ARPT capacity (ignored for [`PredictorKind::StaticOnly`]).
    pub capacity: Capacity,
    /// Compiler hints, if enabled.
    pub hints: Option<HintTable>,
}

impl EvalConfig {
    /// The paper's five Figure 4 schemes over an unlimited table, in
    /// presentation order: STATIC, 1BIT, 1BIT-GBH, 1BIT-CID, 1BIT-HYBRID.
    pub fn figure4_schemes() -> Vec<(&'static str, EvalConfig)> {
        let unlimited = |kind, context| EvalConfig {
            kind,
            context,
            capacity: Capacity::Unlimited,
            hints: None,
        };
        vec![
            (
                "STATIC",
                unlimited(PredictorKind::StaticOnly, Context::None),
            ),
            ("1BIT", unlimited(PredictorKind::OneBit, Context::None)),
            (
                "1BIT-GBH",
                unlimited(PredictorKind::OneBit, Context::Gbh { bits: 8 }),
            ),
            (
                "1BIT-CID",
                unlimited(PredictorKind::OneBit, Context::Cid { bits: 24 }),
            ),
            (
                "1BIT-HYBRID",
                unlimited(PredictorKind::OneBit, Context::HYBRID_8_24),
            ),
        ]
    }
}

/// Per-source tallies.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct SourceStats {
    /// References classified by this source.
    pub total: u64,
    /// Of those, correctly.
    pub correct: u64,
}

/// Aggregate results of one evaluation run.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct PredictionStats {
    /// Dynamic memory references observed.
    pub total: u64,
    /// Correctly classified references.
    pub correct: u64,
    per_source: [SourceStats; 4],
}

impl PredictionStats {
    /// Overall classification accuracy in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Tallies for one source.
    pub fn source(&self, source: Source) -> SourceStats {
        self.per_source[source.index()]
    }

    /// Fraction of references classified by `source`.
    pub fn coverage(&self, source: Source) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.source(source).total as f64 / self.total as f64
        }
    }
}

/// Streams a functional trace through the hint → static-heuristic → ARPT
/// pipeline and tallies classification accuracy.
#[derive(Clone, Debug)]
pub struct Evaluator {
    config: EvalConfig,
    arpt: Option<Arpt>,
    stats: PredictionStats,
}

impl Evaluator {
    /// Creates an evaluator for one configuration.
    pub fn new(config: EvalConfig) -> Evaluator {
        let arpt = match config.kind {
            PredictorKind::StaticOnly => None,
            PredictorKind::OneBit => Some(Arpt::new(
                CounterScheme::OneBit,
                config.context,
                config.capacity,
            )),
            PredictorKind::TwoBit => Some(Arpt::new(
                CounterScheme::TwoBit,
                config.context,
                config.capacity,
            )),
        };
        Evaluator {
            config,
            arpt,
            stats: PredictionStats::default(),
        }
    }

    /// Feeds one trace entry; non-memory entries are ignored.
    pub fn observe(&mut self, entry: &TraceEntry) {
        let Some(mem) = entry.mem else { return };
        let actual_stack = mem.region == Region::Stack;
        let (predicted_stack, source) = self.classify(entry, actual_stack);
        self.stats.total += 1;
        self.stats.per_source[source.index()].total += 1;
        if predicted_stack == actual_stack {
            self.stats.correct += 1;
            self.stats.per_source[source.index()].correct += 1;
        }
    }

    fn classify(&mut self, entry: &TraceEntry, actual_stack: bool) -> (bool, Source) {
        // 1. Compiler hints bypass everything.
        if let Some(hints) = &self.config.hints {
            match hints.hint(entry.pc) {
                MemHint::Stack => return (true, Source::Hint),
                MemHint::NonStack => return (false, Source::Hint),
                MemHint::Unknown => {}
            }
        }
        // 2. Addressing-mode rules 1–3.
        let Some(info) = entry.inst.mem_op() else {
            unreachable!("classify called on a non-memory entry");
        };
        match static_hint(&info) {
            StaticHint::Stack => return (true, Source::Static),
            StaticHint::NonStack => return (false, Source::Static),
            StaticHint::Dynamic => {}
        }
        // 3. ARPT (trained on the outcome), or rule 4's default.
        match &mut self.arpt {
            Some(arpt) => {
                let p = arpt.predict_counted(entry.pc, entry.ghr, entry.ra);
                arpt.update(entry.pc, entry.ghr, entry.ra, actual_stack);
                (p, Source::Arpt)
            }
            None => (false, Source::Default),
        }
    }

    /// Drains a [`TraceSource`] — live executor or trace replayer — feeding
    /// every entry through [`Evaluator::observe`].
    ///
    /// # Errors
    ///
    /// Propagates the first [`SourceError`] from the source.
    pub fn consume<S: TraceSource>(&mut self, source: &mut S) -> Result<(), SourceError> {
        while let Some(entry) = source.next_entry()? {
            self.observe(&entry);
        }
        Ok(())
    }

    /// Results so far.
    pub fn stats(&self) -> &PredictionStats {
        &self.stats
    }

    /// Entries occupied in the ARPT (Table 3), when one is configured.
    pub fn arpt_occupied(&self) -> Option<usize> {
        self.arpt.as_ref().map(Arpt::occupied_entries)
    }

    /// The evaluated configuration.
    pub fn config(&self) -> &EvalConfig {
        &self.config
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use arl_isa::{Gpr, Inst, Width};
    use arl_sim::MemAccess;
    use std::collections::HashMap;

    fn mem_entry(pc: u64, base: Gpr, region: Region, ghr: u64, ra: u64) -> TraceEntry {
        TraceEntry {
            pc,
            inst: Inst::Load {
                width: Width::Double,
                signed: true,
                rd: Gpr::T0,
                base,
                offset: 0,
            },
            mem: Some(MemAccess {
                addr: 0,
                width: Width::Double,
                is_load: true,
                region,
            }),
            taken: false,
            next_pc: pc + 8,
            gpr_write: None,
            ghr,
            ra,
            model: arl_sim::ModelHints::NONE,
        }
    }

    fn cfg(kind: PredictorKind) -> EvalConfig {
        EvalConfig {
            kind,
            context: Context::None,
            capacity: Capacity::Unlimited,
            hints: None,
        }
    }

    #[test]
    fn static_rules_classify_revealed_bases() {
        let mut e = Evaluator::new(cfg(PredictorKind::StaticOnly));
        e.observe(&mem_entry(8, Gpr::SP, Region::Stack, 0, 0));
        e.observe(&mem_entry(16, Gpr::GP, Region::Data, 0, 0));
        e.observe(&mem_entry(24, Gpr::T0, Region::Heap, 0, 0)); // rule 4: correct
        e.observe(&mem_entry(32, Gpr::T0, Region::Stack, 0, 0)); // rule 4: wrong
        let s = e.stats();
        assert_eq!(s.total, 4);
        assert_eq!(s.correct, 3);
        assert_eq!(s.source(Source::Static).total, 2);
        assert_eq!(s.source(Source::Static).correct, 2);
        assert_eq!(s.source(Source::Default).total, 2);
        assert_eq!(s.source(Source::Default).correct, 1);
        assert_eq!(e.arpt_occupied(), None);
    }

    #[test]
    fn one_bit_learns_stable_instructions() {
        let mut e = Evaluator::new(cfg(PredictorKind::OneBit));
        // Pointer-based instruction that always hits the stack: first
        // prediction cold-misses, the rest are right.
        for _ in 0..100 {
            e.observe(&mem_entry(8, Gpr::A0, Region::Stack, 0, 0));
        }
        let s = e.stats();
        assert_eq!(s.total, 100);
        assert_eq!(s.correct, 99);
        assert_eq!(s.source(Source::Arpt).total, 100);
        assert_eq!(e.arpt_occupied(), Some(1));
    }

    #[test]
    fn hints_bypass_the_arpt() {
        let mut tags = HashMap::new();
        tags.insert(8u64, MemHint::Stack);
        let mut config = cfg(PredictorKind::OneBit);
        config.hints = Some(HintTable::from_map(tags));
        let mut e = Evaluator::new(config);
        for _ in 0..10 {
            e.observe(&mem_entry(8, Gpr::A0, Region::Stack, 0, 0));
        }
        let s = e.stats();
        assert_eq!(s.correct, 10, "hinted instruction never cold-misses");
        assert_eq!(s.source(Source::Hint).total, 10);
        assert_eq!(
            e.arpt_occupied(),
            Some(0),
            "hinted pcs stay out of the ARPT"
        );
    }

    #[test]
    fn non_mem_entries_are_ignored() {
        let mut e = Evaluator::new(cfg(PredictorKind::OneBit));
        e.observe(&TraceEntry {
            pc: 8,
            inst: Inst::Nop,
            mem: None,
            taken: false,
            next_pc: 16,
            gpr_write: None,
            ghr: 0,
            ra: 0,
            model: arl_sim::ModelHints::NONE,
        });
        assert_eq!(e.stats().total, 0);
        assert_eq!(e.stats().accuracy(), 1.0);
    }

    #[test]
    fn figure4_schemes_are_complete() {
        let schemes = EvalConfig::figure4_schemes();
        let names: Vec<&str> = schemes.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec!["STATIC", "1BIT", "1BIT-GBH", "1BIT-CID", "1BIT-HYBRID"]
        );
    }

    #[test]
    fn two_bit_loses_to_one_bit_on_alternation() {
        // Region alternates every iteration: 1-bit is always wrong after
        // the first, 2-bit stays at the hysteresis boundary — both do
        // poorly, but on a *mostly*-stable stream with rare flips the 1-bit
        // recovers faster. Pattern: 9 stack, 1 non-stack, repeated.
        let run = |kind| {
            let mut e = Evaluator::new(cfg(kind));
            for _ in 0..50 {
                for _ in 0..9 {
                    e.observe(&mem_entry(8, Gpr::A0, Region::Stack, 0, 0));
                }
                e.observe(&mem_entry(8, Gpr::A0, Region::Data, 0, 0));
            }
            e.stats().accuracy()
        };
        let one = run(PredictorKind::OneBit);
        let two = run(PredictorKind::TwoBit);
        // 1-bit: 2 misses per period of 10 (the flip and the flip-back).
        // 2-bit: 1 miss per period (hysteresis absorbs the single flip).
        assert!(two > one, "hysteresis wins on this pattern: {two} vs {one}");
    }
}
