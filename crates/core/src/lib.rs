//! # arl-core — access region locality and prediction
//!
//! The reproduced paper's contribution (Sections 3.4–3.5): predicting, per
//! static memory instruction, whether it will access the **stack** or a
//! **non-stack** (data/heap) region, before its effective address is known —
//! so the dispatcher of a data-decoupled processor can steer it to the right
//! memory pipeline.
//!
//! The prediction pipeline, in the paper's priority order:
//!
//! 1. **Compiler hints** ([`hints`]) — when available, a stack/non-stack tag
//!    derived from the Figure 6 `classify_mem` analysis (or from a profile)
//!    bypasses prediction entirely.
//! 2. **Static addressing-mode heuristics** ([`static_hint`]) — `$zero`
//!    (constant) and `$gp` bases reveal non-stack; `$sp`/`$fp` reveal stack.
//!    These instructions never occupy ARPT entries.
//! 3. **The ARPT** ([`Arpt`]) — a tagless branch-predictor-like table
//!    indexed by pc (optionally XOR-folded with run-time [`Context`]: global
//!    branch history and/or the caller-identifying link register), holding
//!    1-bit last-region or 2-bit hysteresis state.
//!
//! [`Evaluator`] measures the pipeline's classification accuracy over a
//! functional trace (Figures 4 and 5, Table 3); [`QueueChoice`] is the
//! steering decision the timing simulator acts on.
//!
//! ```
//! use arl_core::{Arpt, Capacity, Context, CounterScheme};
//!
//! let mut arpt = Arpt::new(CounterScheme::OneBit, Context::None, Capacity::Entries(1 << 15));
//! // Cold entries predict non-stack (heuristic rule 4)...
//! assert!(!arpt.predict(0x40_0000, 0, 0));
//! // ...and learn the observed region.
//! arpt.update(0x40_0000, 0, 0, true);
//! assert!(arpt.predict(0x40_0000, 0, 0));
//! ```

mod arpt;
mod context;
mod eval;
mod heuristic;
pub mod hints;
mod model;
mod steer;

pub use arpt::{Arpt, Capacity, CounterScheme};
pub use context::Context;
pub use eval::{EvalConfig, Evaluator, PredictionStats, PredictorKind, Source};
pub use heuristic::{static_hint, StaticHint};
pub use hints::{classify_mem, HintTable, MemHint};
pub use model::{classify_fu, fpr_dest_index, model_srcs, FuClass, NO_SRC};
pub use steer::QueueChoice;
