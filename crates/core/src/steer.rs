//! Dispatch steering for the data-decoupled pipeline.

/// Which memory instruction queue the dispatcher steers an instruction to
/// (paper Section 4.2): the ordinary Load Store Queue backed by the data
/// cache, or the Local Variable Access Queue backed by the stack cache.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum QueueChoice {
    /// Load Store Queue → multi-ported data cache (non-stack references).
    Lsq,
    /// Local Variable Access Queue → local variable cache (stack
    /// references).
    Lvaq,
}

impl QueueChoice {
    /// Steering decision from a predicted "is stack" bit.
    pub fn from_prediction(predict_stack: bool) -> QueueChoice {
        if predict_stack {
            QueueChoice::Lvaq
        } else {
            QueueChoice::Lsq
        }
    }

    /// The correct queue for an access whose region is now known.
    pub fn correct_for(is_stack: bool) -> QueueChoice {
        QueueChoice::from_prediction(is_stack)
    }

    /// Whether this choice routes to the stack pipeline.
    pub fn is_stack_pipe(self) -> bool {
        self == QueueChoice::Lvaq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_maps_to_queue() {
        assert_eq!(QueueChoice::from_prediction(true), QueueChoice::Lvaq);
        assert_eq!(QueueChoice::from_prediction(false), QueueChoice::Lsq);
        assert!(QueueChoice::Lvaq.is_stack_pipe());
        assert!(!QueueChoice::Lsq.is_stack_pipe());
    }
}
