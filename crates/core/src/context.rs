//! Run-time context used to index the ARPT.

use arl_isa::INST_BYTES;

/// The run-time context XOR-folded into the ARPT index (paper
/// Section 3.4.1): global branch history (GBH), caller identification (CID,
/// the link register), both, or none.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Context {
    /// Index by pc alone (the simple 1-bit / 2-bit schemes).
    #[default]
    None,
    /// XOR the low `bits` of the global (conditional-)branch history.
    Gbh {
        /// Number of history bits used.
        bits: u32,
    },
    /// XOR the low `bits` of the caller identification (the `$ra` word
    /// index — "the link register usually keeps the next PC of the call
    /// instruction and thus can be used as a unique CID").
    Cid {
        /// Number of CID bits used.
        bits: u32,
    },
    /// Concatenate GBH above CID: `gbh << cid_bits | cid`. The paper's
    /// unlimited-table hybrid uses 8 + 24 bits; the Table 4 pipeline uses
    /// 8 + 7 bits.
    Hybrid {
        /// GBH bits (upper field).
        gbh_bits: u32,
        /// CID bits (lower field).
        cid_bits: u32,
    },
}

impl Context {
    /// The paper's unlimited-ARPT hybrid: 8 GBH bits over 24 CID bits.
    pub const HYBRID_8_24: Context = Context::Hybrid {
        gbh_bits: 8,
        cid_bits: 24,
    };

    /// The Table 4 machine's hybrid: 8 GBH bits over 7 CID bits.
    pub const HYBRID_8_7: Context = Context::Hybrid {
        gbh_bits: 8,
        cid_bits: 7,
    };

    fn mask(bits: u32) -> u64 {
        if bits >= 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        }
    }

    /// Computes the context value for an instruction, given the global
    /// branch history register and the current link-register value.
    pub fn value(&self, ghr: u64, ra: u64) -> u64 {
        let cid = ra / INST_BYTES;
        match *self {
            Context::None => 0,
            Context::Gbh { bits } => ghr & Self::mask(bits),
            Context::Cid { bits } => cid & Self::mask(bits),
            Context::Hybrid { gbh_bits, cid_bits } => {
                ((ghr & Self::mask(gbh_bits)) << cid_bits) | (cid & Self::mask(cid_bits))
            }
        }
    }

    /// Short label used in reports (`"1BIT-GBH"`-style suffixes).
    pub fn label(&self) -> &'static str {
        match self {
            Context::None => "",
            Context::Gbh { .. } => "GBH",
            Context::Cid { .. } => "CID",
            Context::Hybrid { .. } => "HYBRID",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_zero() {
        assert_eq!(Context::None.value(u64::MAX, u64::MAX), 0);
    }

    #[test]
    fn gbh_takes_low_history_bits() {
        let c = Context::Gbh { bits: 4 };
        assert_eq!(c.value(0b1011_0110, 0), 0b0110);
    }

    #[test]
    fn cid_uses_word_index_of_ra() {
        let c = Context::Cid { bits: 8 };
        // ra = 0x400010 → word index 0x80002 → low 8 bits = 0x02.
        assert_eq!(c.value(0, 0x40_0010), 0x02);
    }

    #[test]
    fn hybrid_concatenates() {
        let c = Context::Hybrid {
            gbh_bits: 4,
            cid_bits: 8,
        };
        let v = c.value(0b1111, 8 * 0xAB);
        assert_eq!(v, 0b1111 << 8 | 0xAB);
    }

    #[test]
    fn hybrid_presets_distinguish_contexts() {
        // Two calls from different sites must map to different hybrid values.
        let a = Context::HYBRID_8_24.value(0, 0x40_0100);
        let b = Context::HYBRID_8_24.value(0, 0x40_0200);
        assert_ne!(a, b);
        // And different histories change the value too.
        let c = Context::HYBRID_8_7.value(0b1, 0x40_0100);
        let d = Context::HYBRID_8_7.value(0b0, 0x40_0100);
        assert_ne!(c, d);
    }
}
