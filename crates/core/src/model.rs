//! Pure per-instruction model precomputation.
//!
//! Everything here is a pure function of the decoded instruction — the
//! functional-unit class and latency, the renamer source operands, the
//! floating-point destination. Both timing cores used to recompute these in
//! their dispatch stages on every replay; factoring them out lets the
//! compiled-trace capture path (`arl-trace`'s v3 `.arltrace` section)
//! evaluate them **once** at capture time and ship the results alongside
//! each event, so replay's hot loop skips the instruction decode entirely.
//!
//! The contract is exact equivalence: a timing core consuming precomputed
//! hints must behave bit-identically to one calling these functions live,
//! so the functions below replicate the dispatch-stage semantics (including
//! the `$zero` filtering and the 3-operand cap) rather than idealizing them.

use arl_isa::{AluOp, FAluOp, Fpr, Gpr, Inst};

/// Functional-unit classes (Table 4: 16 int ALUs, 16 FP ALUs, 4 int
/// mul/div, 4 FP mul/div). The discriminants are the serialization tags
/// used by compiled traces and sharded-replay state blobs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FuClass {
    IntAlu = 0,
    FpAlu = 1,
    IntMulDiv = 2,
    FpMulDiv = 3,
}

impl FuClass {
    /// Decodes a serialization tag; `None` when out of range.
    pub fn from_tag(tag: u8) -> Option<FuClass> {
        match tag {
            0 => Some(FuClass::IntAlu),
            1 => Some(FuClass::FpAlu),
            2 => Some(FuClass::IntMulDiv),
            3 => Some(FuClass::FpMulDiv),
            _ => None,
        }
    }

    /// The serialization tag (two bits).
    pub fn tag(self) -> u8 {
        self as u8
    }
}

/// Execution latency and FU class per instruction (MIPS R10000-flavoured).
/// Loads and stores use an integer ALU for address generation (1 cycle);
/// the memory latency is charged separately by the memory stage.
pub fn classify_fu(inst: &Inst) -> (FuClass, u64) {
    match inst {
        Inst::Alu { op, .. } | Inst::AluI { op, .. } => match op {
            AluOp::Mul => (FuClass::IntMulDiv, 5),
            AluOp::Div | AluOp::Rem => (FuClass::IntMulDiv, 20),
            _ => (FuClass::IntAlu, 1),
        },
        Inst::FAlu { op, .. } => match op {
            FAluOp::Mul => (FuClass::FpMulDiv, 3),
            FAluOp::Div => (FuClass::FpMulDiv, 12),
            FAluOp::Sqrt => (FuClass::FpMulDiv, 18),
            _ => (FuClass::FpAlu, 2),
        },
        Inst::FCmp { .. } | Inst::CvtIf { .. } | Inst::CvtFi { .. } => (FuClass::FpAlu, 2),
        _ => (FuClass::IntAlu, 1),
    }
}

/// Sentinel for "no register" in [`model_srcs`] and [`fpr_dest_index`].
pub const NO_SRC: u8 = u8::MAX;

/// The unified-register-file operands the dispatch stage resolves against
/// the renamer: up to three *issue* source registers (indices 0–31 = GPR,
/// 32–63 = FPR, [`NO_SRC`] = unused slot) plus the separately tracked
/// store-*data* operand. Stores wait only on their address operands to
/// issue — the data operand gates completion, not address generation — so
/// `Store`/`FStore` split their sources exactly as the timing dispatch
/// stage does: the base register (if not `$zero`) is the sole issue
/// dependence and the stored value is the data dependence (`FStore` data is
/// unconditional; the FP register file has no zero register).
pub fn model_srcs(inst: &Inst) -> ([u8; 3], u8) {
    let mut srcs = [NO_SRC; 3];
    let mut data = NO_SRC;
    match *inst {
        Inst::Store { rs, base, .. } => {
            if base != Gpr::ZERO {
                srcs[0] = base.index() as u8;
            }
            if rs != Gpr::ZERO {
                data = rs.index() as u8;
            }
        }
        Inst::FStore { fs, base, .. } => {
            if base != Gpr::ZERO {
                srcs[0] = base.index() as u8;
            }
            data = 32 + fs.index() as u8;
        }
        _ => {
            let mut n = 0;
            let mut gprs = [Gpr::ZERO; 2];
            let ng = inst.gpr_sources_into(&mut gprs);
            for &r in &gprs[..ng] {
                srcs[n] = r.index() as u8;
                n += 1;
            }
            let mut fprs = [Fpr::new(0); 2];
            let nf = inst.fpr_sources_into(&mut fprs);
            for &r in &fprs[..nf] {
                if n < 3 {
                    srcs[n] = 32 + r.index() as u8;
                    n += 1;
                }
            }
        }
    }
    (srcs, data)
}

/// Unified-register-file index of the floating-point destination
/// (`32 + fd`), or [`NO_SRC`] when the instruction writes no FPR.
pub fn fpr_dest_index(inst: &Inst) -> u8 {
    match inst.fpr_dest() {
        Some(fd) => 32 + fd.index() as u8,
        None => NO_SRC,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arl_isa::{BranchCond, FCmpOp, Syscall, Width};

    #[test]
    fn classify_matches_latency_table() {
        let alu = |op| Inst::Alu {
            op,
            rd: Gpr::T0,
            rs: Gpr::T1,
            rt: Gpr::T2,
        };
        assert_eq!(classify_fu(&alu(AluOp::Add)), (FuClass::IntAlu, 1));
        assert_eq!(classify_fu(&alu(AluOp::Mul)), (FuClass::IntMulDiv, 5));
        assert_eq!(classify_fu(&alu(AluOp::Div)), (FuClass::IntMulDiv, 20));
        assert_eq!(classify_fu(&alu(AluOp::Rem)), (FuClass::IntMulDiv, 20));
        let falu = |op| Inst::FAlu {
            op,
            fd: Fpr::new(0),
            fs: Fpr::new(1),
            ft: Fpr::new(2),
        };
        assert_eq!(classify_fu(&falu(FAluOp::Add)), (FuClass::FpAlu, 2));
        assert_eq!(classify_fu(&falu(FAluOp::Mul)), (FuClass::FpMulDiv, 3));
        assert_eq!(classify_fu(&falu(FAluOp::Div)), (FuClass::FpMulDiv, 12));
        assert_eq!(classify_fu(&falu(FAluOp::Sqrt)), (FuClass::FpMulDiv, 18));
        assert_eq!(
            classify_fu(&Inst::FCmp {
                op: FCmpOp::Lt,
                rd: Gpr::T0,
                fs: Fpr::new(1),
                ft: Fpr::new(2),
            }),
            (FuClass::FpAlu, 2)
        );
        assert_eq!(classify_fu(&Inst::Nop), (FuClass::IntAlu, 1));
        assert_eq!(
            classify_fu(&Inst::Jal { target: 0x40_0000 }),
            (FuClass::IntAlu, 1)
        );
    }

    #[test]
    fn fu_tags_round_trip() {
        for fu in [
            FuClass::IntAlu,
            FuClass::FpAlu,
            FuClass::IntMulDiv,
            FuClass::FpMulDiv,
        ] {
            assert_eq!(FuClass::from_tag(fu.tag()), Some(fu));
        }
        assert_eq!(FuClass::from_tag(4), None);
    }

    #[test]
    fn store_splits_address_and_data_operands() {
        let st = Inst::Store {
            width: Width::Word,
            rs: Gpr::T1,
            base: Gpr::SP,
            offset: 8,
        };
        let (srcs, data) = model_srcs(&st);
        assert_eq!(srcs, [Gpr::SP.index() as u8, NO_SRC, NO_SRC]);
        assert_eq!(data, Gpr::T1.index() as u8);
        // $zero never creates a dependence on either side.
        let st0 = Inst::Store {
            width: Width::Word,
            rs: Gpr::ZERO,
            base: Gpr::ZERO,
            offset: 8,
        };
        assert_eq!(model_srcs(&st0), ([NO_SRC; 3], NO_SRC));
    }

    #[test]
    fn fstore_data_is_unconditional() {
        let st = Inst::FStore {
            fs: Fpr::new(0),
            base: Gpr::ZERO,
            offset: 0,
        };
        let (srcs, data) = model_srcs(&st);
        assert_eq!(srcs, [NO_SRC; 3]);
        assert_eq!(data, 32);
    }

    #[test]
    fn non_store_sources_follow_the_isa_extractors() {
        let add = Inst::Alu {
            op: AluOp::Add,
            rd: Gpr::T0,
            rs: Gpr::T1,
            rt: Gpr::ZERO,
        };
        assert_eq!(
            model_srcs(&add),
            ([Gpr::T1.index() as u8, NO_SRC, NO_SRC], NO_SRC)
        );
        let fcmp = Inst::FCmp {
            op: FCmpOp::Eq,
            rd: Gpr::T0,
            fs: Fpr::new(3),
            ft: Fpr::new(4),
        };
        assert_eq!(model_srcs(&fcmp), ([35, 36, NO_SRC], NO_SRC));
        let br = Inst::Branch {
            cond: BranchCond::Eq,
            rs: Gpr::T1,
            rt: Gpr::T2,
            target: 0x40_0000,
        };
        assert_eq!(
            model_srcs(&br),
            (
                [Gpr::T1.index() as u8, Gpr::T2.index() as u8, NO_SRC],
                NO_SRC
            )
        );
        let sys = Inst::Sys {
            call: Syscall::Malloc,
        };
        assert_eq!(
            model_srcs(&sys),
            ([Gpr::A0.index() as u8, NO_SRC, NO_SRC], NO_SRC)
        );
    }

    #[test]
    fn fpr_dest_offsets_into_unified_file() {
        let fl = Inst::FLoad {
            fd: Fpr::new(7),
            base: Gpr::SP,
            offset: 0,
        };
        assert_eq!(fpr_dest_index(&fl), 39);
        assert_eq!(fpr_dest_index(&Inst::Nop), NO_SRC);
    }

    /// Exhaustive-ish cross-check against the `arl-isa` extractors: for a
    /// spread of instruction shapes, `model_srcs` must agree with
    /// `gpr_sources_into`/`fpr_sources_into` under the dispatch-stage
    /// store split.
    #[test]
    fn model_srcs_agrees_with_isa_extractors() {
        let insts = [
            Inst::Nop,
            Inst::Lui {
                rd: Gpr::T0,
                imm: 7,
            },
            Inst::AluI {
                op: AluOp::Add,
                rd: Gpr::T0,
                rs: Gpr::GP,
                imm: 4,
            },
            Inst::Load {
                width: Width::Double,
                signed: true,
                rd: Gpr::T0,
                base: Gpr::SP,
                offset: 0,
            },
            Inst::FLoad {
                fd: Fpr::new(1),
                base: Gpr::T3,
                offset: 8,
            },
            Inst::CvtIf {
                fd: Fpr::new(2),
                rs: Gpr::T4,
            },
            Inst::CvtFi {
                rd: Gpr::T5,
                fs: Fpr::new(6),
            },
            Inst::FAlu {
                op: FAluOp::Neg,
                fd: Fpr::new(0),
                fs: Fpr::new(1),
                ft: Fpr::new(2),
            },
            Inst::Jr { rs: Gpr::RA },
            Inst::Jalr {
                rd: Gpr::RA,
                rs: Gpr::T9,
            },
            Inst::Sys {
                call: Syscall::Exit,
            },
        ];
        for inst in insts {
            let (srcs, data) = model_srcs(&inst);
            assert_eq!(data, NO_SRC, "{inst}: only stores carry data operands");
            let mut expect = [NO_SRC; 3];
            let mut n = 0;
            let mut gprs = [Gpr::ZERO; 2];
            let ng = inst.gpr_sources_into(&mut gprs);
            for &r in &gprs[..ng] {
                expect[n] = r.index() as u8;
                n += 1;
            }
            let mut fprs = [Fpr::new(0); 2];
            let nf = inst.fpr_sources_into(&mut fprs);
            for &r in &fprs[..nf] {
                if n < 3 {
                    expect[n] = 32 + r.index() as u8;
                    n += 1;
                }
            }
            assert_eq!(srcs, expect, "{inst}");
        }
    }
}
