//! Static addressing-mode heuristics (paper Section 3.4.1).

use arl_isa::{Gpr, MemOpInfo};

/// What the addressing mode of a memory instruction reveals, per the
/// paper's "Static Prediction" rules:
///
/// 1. constant addressing (`$zero` base) → non-stack;
/// 2. `$sp` / `$fp` base → stack;
/// 3. `$gp` base → non-stack;
/// 4. any other base register → the region is not revealed
///    ([`StaticHint::Dynamic`]); predict non-stack or consult the ARPT.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StaticHint {
    /// The addressing mode proves a stack access.
    Stack,
    /// The addressing mode proves a non-stack access.
    NonStack,
    /// The addressing mode reveals nothing; dynamic prediction required.
    Dynamic,
}

impl StaticHint {
    /// Whether the addressing mode revealed the region (rules 1–3).
    pub fn reveals(self) -> bool {
        self != StaticHint::Dynamic
    }

    /// The predicted "is stack" bit; rule 4 defaults to non-stack.
    pub fn predicts_stack(self) -> bool {
        self == StaticHint::Stack
    }
}

/// Applies the paper's four static-prediction rules to a memory
/// instruction's addressing information.
pub fn static_hint(mem: &MemOpInfo) -> StaticHint {
    match mem.base {
        Gpr::ZERO => StaticHint::NonStack, // rule 1: constant addressing
        Gpr::SP | Gpr::FP => StaticHint::Stack, // rule 2
        Gpr::GP => StaticHint::NonStack,   // rule 3
        _ => StaticHint::Dynamic,          // rule 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arl_isa::Width;

    fn mem(base: Gpr) -> MemOpInfo {
        MemOpInfo {
            base,
            offset: 0,
            is_load: true,
            width: Width::Double,
        }
    }

    #[test]
    fn rules_match_paper() {
        assert_eq!(static_hint(&mem(Gpr::ZERO)), StaticHint::NonStack);
        assert_eq!(static_hint(&mem(Gpr::SP)), StaticHint::Stack);
        assert_eq!(static_hint(&mem(Gpr::FP)), StaticHint::Stack);
        assert_eq!(static_hint(&mem(Gpr::GP)), StaticHint::NonStack);
        assert_eq!(static_hint(&mem(Gpr::T0)), StaticHint::Dynamic);
        assert_eq!(static_hint(&mem(Gpr::A0)), StaticHint::Dynamic);
    }

    #[test]
    fn dynamic_defaults_to_non_stack() {
        assert!(!StaticHint::Dynamic.predicts_stack());
        assert!(!StaticHint::Dynamic.reveals());
        assert!(StaticHint::Stack.predicts_stack());
        assert!(StaticHint::Stack.reveals());
    }
}
