//! Property tests for the prediction machinery.

#![cfg(feature = "proptest-tests")]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use arl_core::{Arpt, Capacity, Context, CounterScheme};
use proptest::prelude::*;

fn context() -> impl Strategy<Value = Context> {
    prop_oneof![
        Just(Context::None),
        (1u32..=16).prop_map(|bits| Context::Gbh { bits }),
        (1u32..=24).prop_map(|bits| Context::Cid { bits }),
        (1u32..=8, 1u32..=24)
            .prop_map(|(gbh_bits, cid_bits)| Context::Hybrid { gbh_bits, cid_bits }),
    ]
}

/// A plausible stream of (pc, ghr, ra, is_stack) observations.
fn stream() -> impl Strategy<Value = Vec<(u64, u64, u64, bool)>> {
    proptest::collection::vec(
        (
            (0u64..256).prop_map(|i| 0x40_0000 + i * 8),
            any::<u16>().prop_map(u64::from),
            (0u64..64).prop_map(|i| 0x40_0000 + i * 8),
            any::<bool>(),
        ),
        1..200,
    )
}

proptest! {
    /// A 1-bit ARPT with unlimited capacity recalls the most recent
    /// outcome for every distinct (pc, context) key, exactly.
    #[test]
    fn unlimited_one_bit_recalls_last_outcome(ctx in context(), obs in stream()) {
        let mut arpt = Arpt::new(CounterScheme::OneBit, ctx, Capacity::Unlimited);
        let mut model: std::collections::HashMap<u64, bool> = Default::default();
        for (pc, ghr, ra, is_stack) in obs {
            let key = (pc / 8) ^ ctx.value(ghr, ra);
            let expected = model.get(&key).copied().unwrap_or(false);
            prop_assert_eq!(arpt.predict(pc, ghr, ra), expected);
            arpt.update(pc, ghr, ra, is_stack);
            model.insert(key, is_stack);
        }
        prop_assert_eq!(arpt.occupied_entries(), model.len());
    }

    /// Limited tables obey the pigeonhole bound and prediction is a pure
    /// function of the update history (two identically trained tables
    /// agree everywhere).
    #[test]
    fn limited_tables_are_deterministic_and_bounded(
        ctx in context(),
        obs in stream(),
        log2 in 4u32..10,
    ) {
        let cap = Capacity::Entries(1 << log2);
        let mut a = Arpt::new(CounterScheme::OneBit, ctx, cap);
        let mut b = Arpt::new(CounterScheme::OneBit, ctx, cap);
        for &(pc, ghr, ra, is_stack) in &obs {
            prop_assert_eq!(a.predict(pc, ghr, ra), b.predict(pc, ghr, ra));
            a.update(pc, ghr, ra, is_stack);
            b.update(pc, ghr, ra, is_stack);
        }
        prop_assert!(a.occupied_entries() <= 1 << log2);
        prop_assert_eq!(a.occupied_entries(), b.occupied_entries());
    }

    /// Context values respect their declared bit budgets.
    #[test]
    fn context_values_fit_their_bits(
        ghr in any::<u64>(),
        ra in any::<u64>(),
        gbh_bits in 1u32..=16,
        cid_bits in 1u32..=24,
    ) {
        let gbh = Context::Gbh { bits: gbh_bits }.value(ghr, ra);
        prop_assert!(gbh < 1 << gbh_bits);
        let cid = Context::Cid { bits: cid_bits }.value(ghr, ra);
        prop_assert!(cid < 1 << cid_bits);
        let hybrid = Context::Hybrid { gbh_bits, cid_bits }.value(ghr, ra);
        prop_assert!(hybrid < 1u64 << (gbh_bits + cid_bits));
        // The hybrid decomposes into its fields.
        prop_assert_eq!(hybrid >> cid_bits, gbh);
        prop_assert_eq!(hybrid & ((1 << cid_bits) - 1), cid);
    }

    /// The 2-bit counter never changes its prediction after a single
    /// contrary observation from a saturated state (hysteresis), and
    /// always agrees with the 1-bit scheme after two consecutive
    /// same-direction updates.
    #[test]
    fn two_bit_hysteresis_invariants(obs in proptest::collection::vec(any::<bool>(), 2..100)) {
        let mut two = Arpt::new(CounterScheme::TwoBit, Context::None, Capacity::Unlimited);
        let pc = 0x40_0000;
        for window in obs.windows(2) {
            two.update(pc, 0, 0, window[0]);
            two.update(pc, 0, 0, window[1]);
            if window[0] == window[1] {
                prop_assert_eq!(
                    two.predict(pc, 0, 0),
                    window[0],
                    "two consecutive outcomes decide the 2-bit prediction"
                );
            }
        }
    }
}
