//! Crash-consistent artifact sink with an injectable, seeded I/O fault gate.
//!
//! Every durable artifact the workspace publishes — `BENCH_*.json`
//! documents, `.arltrace` captures, checkpoint-ledger appends and
//! compactions — is routed through this crate so that (a) the happy path
//! follows one audited protocol (temp file + `sync_all` + rename for
//! whole-file publication, `write` + `sync_data` for ledger appends, both
//! followed by a best-effort parent-directory fsync) and (b) a chaos
//! harness can deterministically perturb exactly one of those operations.
//!
//! # Operation index
//!
//! Each durable operation (one whole-file publication counts as one
//! `write` op plus one `rename` op; each ledger append is one `append`
//! op) draws a process-global monotonically increasing index. A fault
//! plan names operations by that index, so a calibration run that logs
//! the op sequence (`ARL_IO_TRACE=<file>`) lets a supervisor aim a fault
//! at, say, "the 7th durable operation" and know exactly which artifact
//! it hits. Indices are only deterministic when the process performs its
//! durable writes in a deterministic order (the chaos harness pins
//! `ARL_THREADS=1` in children for this reason).
//!
//! # Fault plan syntax (`ARL_IO_FAULT`)
//!
//! Comma-separated `kind@op[:keep]` entries:
//!
//! - `short@7:44` — at op 7, write only the first 44 bytes (then sync
//!   them) and return an injected I/O error: a torn write that persists.
//! - `enospc@7:44` — same torn prefix, surfaced as an injected
//!   out-of-space error.
//! - `rename@8` — fail the rename of op 8 after the temp file was
//!   durably written: the published artifact keeps its old contents.
//! - `kill@7:44` — write and sync the first 44 bytes of op 7, then kill
//!   the process with SIGKILL: a crash mid-write, no destructors run.
//!
//! A malformed plan aborts the process rather than silently running
//! fault-free: a chaos campaign whose faults never arm would report a
//! perfect score that tested nothing.

use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// One injected I/O misbehaviour at a single durable operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoFault {
    /// Persist only the first `keep` bytes, then fail with an I/O error.
    ShortWrite { keep: u64 },
    /// Persist only the first `keep` bytes, then fail as out-of-space.
    Enospc { keep: u64 },
    /// Fail the publishing rename; the target keeps its old contents.
    InterruptedRename,
    /// Persist the first `keep` bytes, then SIGKILL the process.
    Kill { keep: u64 },
}

/// An [`IoFault`] aimed at a specific global operation index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlannedIoFault {
    pub op: u64,
    pub fault: IoFault,
}

impl PlannedIoFault {
    /// Renders the `ARL_IO_FAULT` spec for this fault (`kill@7:44`).
    pub fn to_spec(&self) -> String {
        match self.fault {
            IoFault::ShortWrite { keep } => format!("short@{}:{keep}", self.op),
            IoFault::Enospc { keep } => format!("enospc@{}:{keep}", self.op),
            IoFault::InterruptedRename => format!("rename@{}", self.op),
            IoFault::Kill { keep } => format!("kill@{}:{keep}", self.op),
        }
    }

    /// Short human label for reports (`kill`, `short`, `enospc`, `rename`).
    pub fn kind_label(&self) -> &'static str {
        match self.fault {
            IoFault::ShortWrite { .. } => "short",
            IoFault::Enospc { .. } => "enospc",
            IoFault::InterruptedRename => "rename",
            IoFault::Kill { .. } => "kill",
        }
    }
}

/// Parses a comma-separated `ARL_IO_FAULT` plan (see crate docs).
pub fn parse_io_plan(value: &str) -> Result<Vec<PlannedIoFault>, String> {
    let mut plan = Vec::new();
    for raw in value.split(',') {
        let spec = raw.trim();
        if spec.is_empty() {
            continue;
        }
        let (kind, rest) = spec
            .split_once('@')
            .ok_or_else(|| format!("fault spec {spec:?} is missing '@'"))?;
        let (op_text, keep_text) = match rest.split_once(':') {
            Some((op, keep)) => (op, Some(keep)),
            None => (rest, None),
        };
        let op: u64 = op_text
            .parse()
            .map_err(|_| format!("fault spec {spec:?} has a non-numeric op index"))?;
        let keep = match keep_text {
            Some(k) => Some(
                k.parse::<u64>()
                    .map_err(|_| format!("fault spec {spec:?} has a non-numeric keep count"))?,
            ),
            None => None,
        };
        let fault = match (kind, keep) {
            ("short", Some(keep)) => IoFault::ShortWrite { keep },
            ("enospc", Some(keep)) => IoFault::Enospc { keep },
            ("kill", Some(keep)) => IoFault::Kill { keep },
            ("rename", None) => IoFault::InterruptedRename,
            ("short" | "enospc" | "kill", None) => {
                return Err(format!("fault spec {spec:?} needs a ':keep' byte count"));
            }
            ("rename", Some(_)) => {
                return Err(format!("fault spec {spec:?}: rename takes no keep count"));
            }
            _ => {
                return Err(format!(
                    "fault spec {spec:?} has unknown kind {kind:?} \
                     (valid: short, enospc, rename, kill)"
                ));
            }
        };
        plan.push(PlannedIoFault { op, fault });
    }
    Ok(plan)
}

struct PlanState {
    armed: bool,
    plan: Vec<PlannedIoFault>,
}

static PLAN: Mutex<PlanState> = Mutex::new(PlanState {
    armed: false,
    plan: Vec::new(),
});
static OPS: AtomicU64 = AtomicU64::new(0);

/// Number of durable operations this process has issued so far.
pub fn ops_used() -> u64 {
    OPS.load(Ordering::SeqCst)
}

/// Installs a fault plan directly, overriding any `ARL_IO_FAULT` value.
/// Meant for in-process tests; supervisors configure children via env.
pub fn install_io_plan(plan: Vec<PlannedIoFault>) {
    let mut state = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    state.armed = true;
    state.plan = plan;
}

fn fault_for(op: u64) -> Option<IoFault> {
    let mut state = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    if !state.armed {
        state.armed = true;
        if let Ok(value) = std::env::var("ARL_IO_FAULT") {
            match parse_io_plan(&value) {
                Ok(plan) => state.plan = plan,
                Err(e) => {
                    // Failing open would let a chaos run silently test nothing.
                    eprintln!("[arl-sink] invalid ARL_IO_FAULT: {e}");
                    std::process::exit(2);
                }
            }
        }
    }
    state.plan.iter().find(|p| p.op == op).map(|p| p.fault)
}

fn trace_target() -> Option<&'static PathBuf> {
    static TARGET: OnceLock<Option<PathBuf>> = OnceLock::new();
    TARGET
        .get_or_init(|| std::env::var_os("ARL_IO_TRACE").map(PathBuf::from))
        .as_ref()
}

/// Kind of durable operation, as logged by `ARL_IO_TRACE`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Whole-file write of a temp file (half of a publication).
    Write,
    /// The rename publishing a temp file over its target.
    Rename,
    /// An append to an open ledger handle.
    Append,
}

impl OpKind {
    fn label(self) -> &'static str {
        match self {
            OpKind::Write => "write",
            OpKind::Rename => "rename",
            OpKind::Append => "append",
        }
    }

    fn from_label(label: &str) -> Option<Self> {
        match label {
            "write" => Some(OpKind::Write),
            "rename" => Some(OpKind::Rename),
            "append" => Some(OpKind::Append),
            _ => None,
        }
    }
}

/// One durable operation recorded by a calibration run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IoOp {
    pub op: u64,
    pub kind: OpKind,
    pub bytes: u64,
    pub file: String,
}

/// Parses the `ARL_IO_TRACE` log back into the op sequence. Unparsable
/// lines (e.g. a torn tail from a killed calibration run) are skipped.
pub fn parse_io_trace(text: &str) -> Vec<IoOp> {
    let mut ops = Vec::new();
    for line in text.lines() {
        let mut op = None;
        let mut kind = None;
        let mut bytes = None;
        let mut file = None;
        for field in line.split_whitespace() {
            match field.split_once('=') {
                Some(("op", v)) => op = v.parse().ok(),
                Some(("kind", v)) => kind = OpKind::from_label(v),
                Some(("bytes", v)) => bytes = v.parse().ok(),
                Some(("file", v)) => file = Some(v.to_string()),
                _ => {}
            }
        }
        if let (Some(op), Some(kind), Some(bytes), Some(file)) = (op, kind, bytes, file) {
            ops.push(IoOp {
                op,
                kind,
                bytes,
                file,
            });
        }
    }
    ops
}

fn log_op(op: u64, kind: OpKind, bytes: u64, path: &Path) {
    let Some(target) = trace_target() else {
        return;
    };
    static LOG: Mutex<()> = Mutex::new(());
    let _guard = LOG.lock().unwrap_or_else(|e| e.into_inner());
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string());
    let line = format!("op={op} kind={} bytes={bytes} file={name}\n", kind.label());
    // Calibration logging is best-effort and intentionally bypasses the
    // fault gate: it observes durable ops, it is not one.
    let _ = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(target)
        .and_then(|mut f| f.write_all(line.as_bytes()));
}

fn next_op(kind: OpKind, bytes: u64, path: &Path) -> u64 {
    let op = OPS.fetch_add(1, Ordering::SeqCst);
    log_op(op, kind, bytes, path);
    op
}

fn hard_kill() -> ! {
    // SIGKILL ourselves: no destructors, no atexit, no buffered flushes —
    // the closest portable-within-this-workspace stand-in for a crash.
    let pid = std::process::id();
    let _ = std::process::Command::new("/bin/sh")
        .arg("-c")
        .arg(format!("kill -KILL {pid}"))
        .status();
    // `kill` should never let us get here; abort as a fallback so a
    // planned crash can't continue as if nothing happened.
    std::process::abort();
}

fn injected_error(what: String) -> io::Error {
    io::Error::other(what)
}

/// Writes `bytes` through the fault gate at a fresh op index.
fn gated_write(file: &mut File, bytes: &[u8], op: u64) -> io::Result<()> {
    match fault_for(op) {
        None => file.write_all(bytes),
        Some(IoFault::ShortWrite { keep }) => {
            let keep = (keep as usize).min(bytes.len());
            file.write_all(&bytes[..keep])?;
            let _ = file.sync_data();
            Err(injected_error(format!(
                "injected short write: kept {keep} of {} bytes (op {op})",
                bytes.len()
            )))
        }
        Some(IoFault::Enospc { keep }) => {
            let keep = (keep as usize).min(bytes.len());
            file.write_all(&bytes[..keep])?;
            let _ = file.sync_data();
            Err(injected_error(format!(
                "injected ENOSPC after {keep} of {} bytes (op {op})",
                bytes.len()
            )))
        }
        Some(IoFault::Kill { keep }) => {
            let keep = (keep as usize).min(bytes.len());
            let _ = file.write_all(&bytes[..keep]);
            let _ = file.sync_data();
            hard_kill();
        }
        Some(IoFault::InterruptedRename) => {
            // A rename fault landing on a write op still means "this
            // publication fails": write nothing and surface the error.
            Err(injected_error(format!(
                "injected rename fault aimed at write op {op}"
            )))
        }
    }
}

fn sync_parent_dir(path: &Path) {
    // Durability of the rename itself. Best-effort: some filesystems
    // refuse to open directories, and a lost dirent after a crash is
    // detected (missing artifact), never silent corruption.
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => Path::new("."),
    };
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
}

/// Deterministic sibling temp path for an atomic publication of `path`.
pub fn temp_path_for(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "artifact".to_string());
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    };
    dir.join(format!(".{name}.arl-tmp"))
}

/// Atomically publishes `bytes` at `path`: temp file + `sync_all` +
/// rename + parent-directory fsync. Under any crash or injected fault
/// the target holds either its previous contents or the complete new
/// contents — never a torn mixture (the torn prefix lives only in the
/// deterministic `.<name>.arl-tmp` sibling).
pub fn durable_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = temp_path_for(path);
    let mut file = File::create(&tmp)?;
    let write_op = next_op(OpKind::Write, bytes.len() as u64, path);
    gated_write(&mut file, bytes, write_op)?;
    file.sync_all()?;
    drop(file);
    let rename_op = next_op(OpKind::Rename, 0, path);
    match fault_for(rename_op) {
        Some(IoFault::Kill { .. }) => hard_kill(),
        Some(_) => {
            return Err(injected_error(format!(
                "injected interrupted rename of {} (op {rename_op})",
                path.display()
            )));
        }
        None => {}
    }
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path);
    Ok(())
}

/// Durably appends `bytes` to an open handle: fault-gated `write_all`
/// followed by `sync_data`, so a completed append survives a crash and a
/// torn one persists only its prefix (for the reader to detect).
pub fn append_durable(file: &mut File, label: &Path, bytes: &[u8]) -> io::Result<()> {
    let op = next_op(OpKind::Append, bytes.len() as u64, label);
    gated_write(file, bytes, op)?;
    file.sync_data()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    /// Fault-plan state and the op counter are process-global; serialize
    /// the tests that arm plans so indices stay predictable.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn temp_file(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("arl-sink-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(tag)
    }

    #[test]
    fn plan_specs_round_trip() {
        let plan = vec![
            PlannedIoFault {
                op: 7,
                fault: IoFault::ShortWrite { keep: 44 },
            },
            PlannedIoFault {
                op: 9,
                fault: IoFault::Enospc { keep: 0 },
            },
            PlannedIoFault {
                op: 11,
                fault: IoFault::InterruptedRename,
            },
            PlannedIoFault {
                op: 13,
                fault: IoFault::Kill { keep: 3 },
            },
        ];
        let spec = plan
            .iter()
            .map(PlannedIoFault::to_spec)
            .collect::<Vec<_>>()
            .join(",");
        assert_eq!(spec, "short@7:44,enospc@9:0,rename@11,kill@13:3");
        assert_eq!(parse_io_plan(&spec).unwrap(), plan);
        assert_eq!(parse_io_plan("").unwrap(), vec![]);
        assert_eq!(parse_io_plan(" short@1:2 , ").unwrap().len(), 1);
    }

    #[test]
    fn malformed_plans_are_rejected() {
        for bad in [
            "short",
            "short@x:1",
            "short@1:x",
            "short@1",
            "rename@1:2",
            "explode@1:2",
        ] {
            assert!(parse_io_plan(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn io_trace_round_trips_and_skips_garbage() {
        let text = "op=0 kind=write bytes=10 file=a.json\n\
                    torn garbage line\n\
                    op=1 kind=rename bytes=0 file=a.json\n\
                    op=2 kind=append bytes=33 file=ledger\n";
        let ops = parse_io_trace(text);
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[0].kind, OpKind::Write);
        assert_eq!(ops[1].kind, OpKind::Rename);
        assert_eq!(
            ops[2],
            IoOp {
                op: 2,
                kind: OpKind::Append,
                bytes: 33,
                file: "ledger".to_string(),
            }
        );
    }

    #[test]
    fn durable_write_publishes_atomically() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        install_io_plan(vec![]);
        let path = temp_file("plain.json");
        durable_write(&path, b"{\"v\":1}").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"v\":1}");
        assert!(!temp_path_for(&path).exists(), "temp file is consumed");
        durable_write(&path, b"{\"v\":2}").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"v\":2}");
    }

    #[test]
    fn short_write_fault_leaves_target_intact() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        install_io_plan(vec![]);
        let path = temp_file("short.json");
        durable_write(&path, b"old-contents").unwrap();
        let fault_op = ops_used(); // the next write op
        install_io_plan(vec![PlannedIoFault {
            op: fault_op,
            fault: IoFault::ShortWrite { keep: 4 },
        }]);
        let err = durable_write(&path, b"new-contents").unwrap_err();
        assert!(err.to_string().contains("injected short write"), "{err}");
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"old-contents",
            "published artifact is untouched by a torn write"
        );
        assert_eq!(
            std::fs::read(temp_path_for(&path)).unwrap(),
            b"new-",
            "the torn prefix lives only in the temp sibling"
        );
        install_io_plan(vec![]);
        durable_write(&path, b"new-contents").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"new-contents");
    }

    #[test]
    fn interrupted_rename_keeps_old_contents() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        install_io_plan(vec![]);
        let path = temp_file("rename.json");
        durable_write(&path, b"old").unwrap();
        let rename_op = ops_used() + 1; // write op, then rename op
        install_io_plan(vec![PlannedIoFault {
            op: rename_op,
            fault: IoFault::InterruptedRename,
        }]);
        let err = durable_write(&path, b"new").unwrap_err();
        assert!(err.to_string().contains("interrupted rename"), "{err}");
        assert_eq!(std::fs::read(&path).unwrap(), b"old");
        assert_eq!(
            std::fs::read(temp_path_for(&path)).unwrap(),
            b"new",
            "the fully written temp file is left for inspection"
        );
        install_io_plan(vec![]);
    }

    #[test]
    fn enospc_fault_persists_only_the_prefix() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        install_io_plan(vec![]);
        let path = temp_file("enospc-ledger");
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&path)
            .unwrap();
        append_durable(&mut file, &path, b"entry-one\n").unwrap();
        let fault_op = ops_used();
        install_io_plan(vec![PlannedIoFault {
            op: fault_op,
            fault: IoFault::Enospc { keep: 3 },
        }]);
        let err = append_durable(&mut file, &path, b"entry-two\n").unwrap_err();
        assert!(err.to_string().contains("ENOSPC"), "{err}");
        assert_eq!(std::fs::read(&path).unwrap(), b"entry-one\nent");
        install_io_plan(vec![]);
    }

    #[test]
    fn op_counter_is_monotonic_across_publications() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        install_io_plan(vec![]);
        let before = ops_used();
        let path = temp_file("count.json");
        durable_write(&path, b"x").unwrap();
        assert_eq!(ops_used(), before + 2, "one write op + one rename op");
    }
}
