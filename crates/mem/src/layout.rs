//! Address-space layout.

use crate::region::Region;

/// The simulated address-space layout.
///
/// Segments own fixed, non-overlapping address ranges (as in SimpleScalar's
/// run-time system, where text starts at `0x00400000`, data above it, and the
/// stack grows down from near `0x7fffc000`):
///
/// ```text
/// 0x0040_0000  ┌───────────────┐
///              │     text      │  instructions, 8 B each
/// 0x1000_0000  ├───────────────┤
///              │     data      │  globals & statics (grows at link time)
/// 0x2000_0000  ├───────────────┤
///              │     heap      │  malloc'd storage (grows up)
/// 0x6000_0000  ├───────────────┤
///              │     stack     │  frames (grows down from stack_top)
/// 0x7fff_f000  └───────────────┘
/// ```
///
/// Because the boundaries are fixed, [`Layout::classify`] decides the access
/// region from the address alone — the idealized form of the paper's
/// per-page TLB stack bit.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Layout {
    text_base: u64,
    data_base: u64,
    heap_base: u64,
    stack_base: u64,
    stack_top: u64,
}

impl Layout {
    /// Creates the standard layout pictured above.
    pub const fn new() -> Layout {
        Layout {
            text_base: 0x0040_0000,
            data_base: 0x1000_0000,
            heap_base: 0x2000_0000,
            stack_base: 0x6000_0000,
            stack_top: 0x7fff_f000,
        }
    }

    /// Base of the text segment (entry point of linked programs).
    pub const fn text_base(&self) -> u64 {
        self.text_base
    }

    /// Base of the data segment (where `$gp` points).
    pub const fn data_base(&self) -> u64 {
        self.data_base
    }

    /// Base of the heap segment (lowest address `malloc` can return).
    pub const fn heap_base(&self) -> u64 {
        self.heap_base
    }

    /// Lowest address that belongs to the stack region.
    pub const fn stack_base(&self) -> u64 {
        self.stack_base
    }

    /// Initial stack pointer; the stack grows down from here.
    pub const fn stack_top(&self) -> u64 {
        self.stack_top
    }

    /// Exclusive upper bound of the heap segment.
    pub const fn heap_limit(&self) -> u64 {
        self.stack_base
    }

    /// Classifies an address into its segment.
    ///
    /// Data references only ever see [`Region::Data`], [`Region::Heap`] or
    /// [`Region::Stack`]; instruction fetch sees [`Region::Text`].
    pub const fn classify(&self, addr: u64) -> Region {
        if addr >= self.stack_base {
            Region::Stack
        } else if addr >= self.heap_base {
            Region::Heap
        } else if addr >= self.data_base {
            Region::Data
        } else {
            Region::Text
        }
    }

    /// Whether `addr` lies in the stack region (the bit the paper's extended
    /// TLB entry stores).
    pub const fn is_stack(&self, addr: u64) -> bool {
        addr >= self.stack_base
    }
}

impl Default for Layout {
    fn default() -> Layout {
        Layout::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_are_ordered_and_disjoint() {
        let l = Layout::default();
        assert!(l.text_base() < l.data_base());
        assert!(l.data_base() < l.heap_base());
        assert!(l.heap_base() < l.stack_base());
        assert!(l.stack_base() < l.stack_top());
    }

    #[test]
    fn classification_at_boundaries() {
        let l = Layout::default();
        assert_eq!(l.classify(l.text_base()), Region::Text);
        assert_eq!(l.classify(l.data_base() - 1), Region::Text);
        assert_eq!(l.classify(l.data_base()), Region::Data);
        assert_eq!(l.classify(l.heap_base() - 1), Region::Data);
        assert_eq!(l.classify(l.heap_base()), Region::Heap);
        assert_eq!(l.classify(l.stack_base() - 1), Region::Heap);
        assert_eq!(l.classify(l.stack_base()), Region::Stack);
        assert_eq!(l.classify(l.stack_top()), Region::Stack);
    }

    #[test]
    fn is_stack_agrees_with_classify() {
        let l = Layout::default();
        for addr in [
            0x0040_0000,
            0x1000_0010,
            0x2000_0010,
            0x6000_0000,
            0x7fff_e000,
        ] {
            assert_eq!(l.is_stack(addr), l.classify(addr) == Region::Stack);
        }
    }
}
