//! Sparse paged memory image.

use std::collections::HashMap;

/// Bytes per page of the sparse image.
pub const PAGE_SIZE: u64 = 4096;

/// A sparse, demand-allocated memory image covering the full simulated
/// address space.
///
/// Unwritten memory reads as zero, as if freshly mapped. Accessors exist for
/// each width the ISA can issue plus `f64`; unaligned and page-crossing
/// accesses are handled (byte at a time on the slow path).
#[derive(Clone, Default, Debug)]
pub struct MemImage {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
}

impl MemImage {
    /// Creates an empty (all-zero) image.
    pub fn new() -> MemImage {
        MemImage::default()
    }

    /// Number of pages currently materialized.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    fn page(&self, addr: u64) -> Option<&[u8; PAGE_SIZE as usize]> {
        self.pages.get(&(addr / PAGE_SIZE)).map(|b| &**b)
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE as usize] {
        self.pages
            .entry(addr / PAGE_SIZE)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE as usize]))
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.page(addr) {
            Some(p) => p[(addr % PAGE_SIZE) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let off = (addr % PAGE_SIZE) as usize;
        self.page_mut(addr)[off] = value;
    }

    /// Reads `N` bytes starting at `addr` into a fixed array.
    fn read_array<const N: usize>(&self, addr: u64) -> [u8; N] {
        let off = (addr % PAGE_SIZE) as usize;
        if off + N <= PAGE_SIZE as usize {
            match self.page(addr) {
                Some(p) => {
                    let mut out = [0u8; N];
                    out.copy_from_slice(&p[off..off + N]);
                    out
                }
                None => [0u8; N],
            }
        } else {
            let mut out = [0u8; N];
            for (i, b) in out.iter_mut().enumerate() {
                *b = self.read_u8(addr + i as u64);
            }
            out
        }
    }

    fn write_array<const N: usize>(&mut self, addr: u64, bytes: [u8; N]) {
        let off = (addr % PAGE_SIZE) as usize;
        if off + N <= PAGE_SIZE as usize {
            self.page_mut(addr)[off..off + N].copy_from_slice(&bytes);
        } else {
            for (i, b) in bytes.iter().enumerate() {
                self.write_u8(addr + i as u64, *b);
            }
        }
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&self, addr: u64) -> u16 {
        u16::from_le_bytes(self.read_array(addr))
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, addr: u64, value: u16) {
        self.write_array(addr, value.to_le_bytes());
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: u64) -> u32 {
        u32::from_le_bytes(self.read_array(addr))
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_array(addr, value.to_le_bytes());
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read_array(addr))
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_array(addr, value.to_le_bytes());
    }

    /// Reads an `f64` (little-endian bit pattern).
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an `f64`.
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// Copies `bytes` into memory starting at `addr` (used by the linker to
    /// install initialized data).
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len).map(|i| self.read_u8(addr + i as u64)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let m = MemImage::new();
        assert_eq!(m.read_u64(0x1234_5678), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn round_trip_each_width() {
        let mut m = MemImage::new();
        m.write_u8(100, 0xab);
        m.write_u16(200, 0xbeef);
        m.write_u32(300, 0xdead_beef);
        m.write_u64(400, 0x0123_4567_89ab_cdef);
        m.write_f64(500, -0.5);
        assert_eq!(m.read_u8(100), 0xab);
        assert_eq!(m.read_u16(200), 0xbeef);
        assert_eq!(m.read_u32(300), 0xdead_beef);
        assert_eq!(m.read_u64(400), 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_f64(500), -0.5);
    }

    #[test]
    fn page_crossing_access() {
        let mut m = MemImage::new();
        let addr = PAGE_SIZE - 3;
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(m.resident_pages(), 2);
        // Bytes land on both pages, little-endian.
        assert_eq!(m.read_u8(addr), 0x88);
        assert_eq!(m.read_u8(PAGE_SIZE), 0x55);
    }

    #[test]
    fn write_bytes_and_read_bytes() {
        let mut m = MemImage::new();
        m.write_bytes(10, &[1, 2, 3, 4]);
        assert_eq!(m.read_bytes(9, 6), vec![0, 1, 2, 3, 4, 0]);
    }

    #[test]
    fn overwrite_is_visible() {
        let mut m = MemImage::new();
        m.write_u32(64, 1);
        m.write_u32(64, 2);
        assert_eq!(m.read_u32(64), 2);
    }
}
