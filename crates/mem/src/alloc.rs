//! First-fit heap allocator backing the `Malloc`/`Free` syscalls.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::layout::Layout;

/// Errors raised by [`HeapAllocator`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AllocError {
    /// The heap segment is exhausted.
    OutOfMemory {
        /// The allocation size that failed.
        requested: u64,
    },
    /// `free` was called with an address that is not the start of a live
    /// allocation.
    InvalidFree {
        /// The offending address.
        addr: u64,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory { requested } => {
                write!(f, "heap exhausted allocating {requested} bytes")
            }
            AllocError::InvalidFree { addr } => {
                write!(f, "free of non-allocated address {addr:#x}")
            }
        }
    }
}

impl Error for AllocError {}

/// A first-fit allocator with free-block coalescing, operating on the heap
/// segment of a [`Layout`].
///
/// Block bookkeeping lives on the host side (the simulated program never
/// inspects allocator metadata), so every byte of a returned block is usable
/// by the program. Addresses are 16-byte aligned.
#[derive(Clone, Debug)]
pub struct HeapAllocator {
    heap_base: u64,
    heap_limit: u64,
    /// Top of the bump region; everything above is virgin.
    brk: u64,
    /// Free blocks keyed by start address → size, coalesced on free.
    free: BTreeMap<u64, u64>,
    /// Live allocations keyed by start address → size.
    live: BTreeMap<u64, u64>,
    /// Total bytes currently allocated.
    in_use: u64,
    /// High-water mark of `brk`.
    peak_brk: u64,
}

const ALIGN: u64 = 16;

impl HeapAllocator {
    /// Creates an allocator for the heap segment of `layout`.
    pub fn new(layout: &Layout) -> HeapAllocator {
        HeapAllocator {
            heap_base: layout.heap_base(),
            heap_limit: layout.heap_limit(),
            brk: layout.heap_base(),
            free: BTreeMap::new(),
            live: BTreeMap::new(),
            in_use: 0,
            peak_brk: layout.heap_base(),
        }
    }

    fn round_up(size: u64) -> u64 {
        size.max(1).div_ceil(ALIGN) * ALIGN
    }

    /// Allocates `size` bytes, returning the block's base address.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::OutOfMemory`] if neither the free list nor the
    /// bump region can satisfy the request.
    pub fn malloc(&mut self, size: u64) -> Result<u64, AllocError> {
        let size = Self::round_up(size);
        // First fit over the free list.
        let found = self
            .free
            .iter()
            .find(|(_, &sz)| sz >= size)
            .map(|(&addr, &sz)| (addr, sz));
        let addr = if let Some((addr, sz)) = found {
            self.free.remove(&addr);
            if sz > size {
                self.free.insert(addr + size, sz - size);
            }
            addr
        } else {
            let addr = self.brk;
            let new_brk = addr
                .checked_add(size)
                .ok_or(AllocError::OutOfMemory { requested: size })?;
            if new_brk > self.heap_limit {
                return Err(AllocError::OutOfMemory { requested: size });
            }
            self.brk = new_brk;
            self.peak_brk = self.peak_brk.max(new_brk);
            addr
        };
        self.live.insert(addr, size);
        self.in_use += size;
        Ok(addr)
    }

    /// Releases the block starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::InvalidFree`] if `addr` is not the base of a
    /// live allocation (double free, interior pointer, garbage).
    pub fn free(&mut self, addr: u64) -> Result<(), AllocError> {
        let size = self
            .live
            .remove(&addr)
            .ok_or(AllocError::InvalidFree { addr })?;
        self.in_use -= size;
        // Coalesce with the successor free block, if adjacent.
        let mut start = addr;
        let mut len = size;
        if let Some(&next_len) = self.free.get(&(start + len)) {
            self.free.remove(&(start + len));
            len += next_len;
        }
        // Coalesce with the predecessor free block, if adjacent.
        if let Some((&prev_start, &prev_len)) = self.free.range(..start).next_back() {
            if prev_start + prev_len == start {
                self.free.remove(&prev_start);
                start = prev_start;
                len += prev_len;
            }
        }
        // If the block now abuts brk, return it to the bump region.
        if start + len == self.brk {
            self.brk = start;
        } else {
            self.free.insert(start, len);
        }
        Ok(())
    }

    /// Current break (exclusive upper bound of any address malloc has
    /// handed out so far).
    pub fn brk(&self) -> u64 {
        self.brk
    }

    /// Highest break ever reached.
    pub fn peak_brk(&self) -> u64 {
        self.peak_brk
    }

    /// Bytes currently allocated.
    pub fn bytes_in_use(&self) -> u64 {
        self.in_use
    }

    /// Number of live allocations.
    pub fn live_blocks(&self) -> usize {
        self.live.len()
    }

    /// Whether `addr` falls inside a live allocation.
    pub fn is_allocated(&self, addr: u64) -> bool {
        self.live
            .range(..=addr)
            .next_back()
            .is_some_and(|(&base, &size)| addr < base + size)
    }

    /// The heap base this allocator serves.
    pub fn heap_base(&self) -> u64 {
        self.heap_base
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn alloc() -> HeapAllocator {
        HeapAllocator::new(&Layout::default())
    }

    #[test]
    fn malloc_returns_aligned_heap_addresses() {
        let mut a = alloc();
        let p = a.malloc(10).unwrap();
        assert_eq!(p % ALIGN, 0);
        assert!(p >= a.heap_base());
        let q = a.malloc(10).unwrap();
        assert!(q >= p + 16, "blocks must not overlap");
    }

    #[test]
    fn free_then_malloc_reuses_space() {
        let mut a = alloc();
        let p = a.malloc(64).unwrap();
        let q = a.malloc(64).unwrap();
        a.free(p).unwrap();
        let r = a.malloc(32).unwrap();
        assert_eq!(r, p, "first fit should reuse the freed block");
        assert_ne!(r, q);
    }

    #[test]
    fn double_free_is_rejected() {
        let mut a = alloc();
        let p = a.malloc(8).unwrap();
        a.free(p).unwrap();
        assert_eq!(a.free(p), Err(AllocError::InvalidFree { addr: p }));
    }

    #[test]
    fn coalescing_rebuilds_large_blocks() {
        let mut a = alloc();
        let p1 = a.malloc(32).unwrap();
        let p2 = a.malloc(32).unwrap();
        let p3 = a.malloc(32).unwrap();
        let _guard = a.malloc(32).unwrap(); // keeps brk away
        a.free(p1).unwrap();
        a.free(p3).unwrap();
        a.free(p2).unwrap(); // middle free must join all three
        let big = a.malloc(96).unwrap();
        assert_eq!(big, p1, "coalesced block should satisfy a 96-byte request");
    }

    #[test]
    fn freeing_top_block_lowers_brk() {
        let mut a = alloc();
        let p = a.malloc(128).unwrap();
        let before = a.brk();
        a.free(p).unwrap();
        assert!(a.brk() < before);
        assert_eq!(a.brk(), p);
    }

    #[test]
    fn out_of_memory_is_reported() {
        let mut a = alloc();
        let whole = a.heap_limit - a.heap_base;
        assert!(a.malloc(whole + ALIGN).is_err());
    }

    #[test]
    fn accounting_tracks_usage() {
        let mut a = alloc();
        assert_eq!(a.bytes_in_use(), 0);
        let p = a.malloc(100).unwrap();
        assert_eq!(a.bytes_in_use(), HeapAllocator::round_up(100));
        assert_eq!(a.live_blocks(), 1);
        assert!(a.is_allocated(p + 5));
        a.free(p).unwrap();
        assert_eq!(a.bytes_in_use(), 0);
        assert!(!a.is_allocated(p));
    }
}
