//! # arl-mem — the simulated memory substrate
//!
//! Models the address space the paper's run-time system assumes (Section 3):
//! a program's memory is divided into **text**, **data**, **heap**, and
//! **stack** segments, and every data reference falls into the data, heap, or
//! stack *access region*. The region of an address is decidable from the
//! address alone because each segment owns a fixed address range
//! ([`Layout`]) — this mirrors how the paper's TLB stores a per-page stack
//! bit "accurately and efficiently when a page is allocated by the run-time
//! system".
//!
//! Components:
//!
//! * [`Layout`] / [`Region`] / [`RegionSet`] — segment map and region
//!   classification (the vocabulary of Figures 2, 4, 5 and Tables 2, 3).
//! * [`MemImage`] — sparse paged memory with typed accessors.
//! * [`HeapAllocator`] — first-fit `malloc`/`free` with coalescing, backing
//!   the `Malloc` syscall.
//! * [`StackBitTlb`] — the per-page stack-bit structure the data-decoupled
//!   pipeline consults to verify region predictions.
//!
//! ```
//! use arl_mem::{Layout, Region};
//!
//! let layout = Layout::default();
//! assert_eq!(layout.classify(layout.data_base()), Region::Data);
//! assert_eq!(layout.classify(layout.stack_top() - 8), Region::Stack);
//! ```

mod alloc;
mod image;
mod layout;
mod region;
mod tlb;

pub use alloc::{AllocError, HeapAllocator};
pub use image::{MemImage, PAGE_SIZE};
pub use layout::Layout;
pub use region::{Region, RegionSet};
pub use tlb::StackBitTlb;
