//! Access regions and region sets.

use std::fmt;

/// A memory segment / access region.
///
/// The paper's access-region analysis (Section 3) concerns the three data
/// regions; [`Region::Text`] exists only so instruction addresses classify
/// somewhere sensible.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Region {
    /// Program text (instructions).
    Text,
    /// Statics and globals.
    Data,
    /// `malloc`-managed storage.
    Heap,
    /// Procedure frames, spills, parameters.
    Stack,
}

impl Region {
    /// The three data regions, in the paper's D/H/S order.
    pub const DATA_REGIONS: [Region; 3] = [Region::Data, Region::Heap, Region::Stack];

    /// Single-letter label used in the paper's Figure 2 ("D", "H", "S").
    pub const fn letter(self) -> &'static str {
        match self {
            Region::Text => "T",
            Region::Data => "D",
            Region::Heap => "H",
            Region::Stack => "S",
        }
    }

    /// The stack / non-stack dichotomy the ARPT predicts.
    pub const fn is_stack(self) -> bool {
        matches!(self, Region::Stack)
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Region::Text => "text",
            Region::Data => "data",
            Region::Heap => "heap",
            Region::Stack => "stack",
        };
        f.write_str(name)
    }
}

/// The set of data regions a static memory instruction has been observed to
/// access — the classes of the paper's Figure 2 ("D", "H", "S", "D/H",
/// "D/S", "H/S", "D/H/S").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RegionSet(u8);

impl RegionSet {
    const DATA: u8 = 1;
    const HEAP: u8 = 2;
    const STACK: u8 = 4;

    /// The empty set (an instruction never executed).
    pub const EMPTY: RegionSet = RegionSet(0);

    /// Creates a set containing a single region.
    ///
    /// # Panics
    ///
    /// Panics if `region` is [`Region::Text`]; text is not a data access
    /// region.
    pub fn only(region: Region) -> RegionSet {
        let mut s = RegionSet::EMPTY;
        s.insert(region);
        s
    }

    fn bit(region: Region) -> u8 {
        match region {
            Region::Data => Self::DATA,
            Region::Heap => Self::HEAP,
            Region::Stack => Self::STACK,
            Region::Text => panic!("text is not a data access region"),
        }
    }

    /// Adds a region to the set.
    ///
    /// # Panics
    ///
    /// Panics if `region` is [`Region::Text`].
    pub fn insert(&mut self, region: Region) {
        self.0 |= Self::bit(region);
    }

    /// Whether the set contains `region`.
    pub fn contains(self, region: Region) -> bool {
        self.0 & Self::bit(region) != 0
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of distinct regions in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the instruction accessed exactly one region — the
    /// access-region-locality property.
    pub fn is_single_region(self) -> bool {
        self.len() == 1
    }

    /// Whether any contained region is the stack.
    pub fn touches_stack(self) -> bool {
        self.contains(Region::Stack)
    }

    /// Whether any contained region is data or heap.
    pub fn touches_non_stack(self) -> bool {
        self.contains(Region::Data) || self.contains(Region::Heap)
    }

    /// The paper's class label: `"D"`, `"H"`, `"S"`, `"D/H"`, `"D/S"`,
    /// `"H/S"`, `"D/H/S"`, or `"-"` for the empty set.
    pub fn label(self) -> &'static str {
        match self.0 {
            0 => "-",
            x if x == Self::DATA => "D",
            x if x == Self::HEAP => "H",
            x if x == Self::STACK => "S",
            x if x == Self::DATA | Self::HEAP => "D/H",
            x if x == Self::DATA | Self::STACK => "D/S",
            x if x == Self::HEAP | Self::STACK => "H/S",
            _ => "D/H/S",
        }
    }

    /// All seven non-empty classes in the paper's presentation order.
    pub const CLASS_LABELS: [&'static str; 7] = ["D", "H", "S", "D/H", "D/S", "H/S", "D/H/S"];

    /// Index of this set within [`RegionSet::CLASS_LABELS`], or `None` for
    /// the empty set.
    pub fn class_index(self) -> Option<usize> {
        RegionSet::CLASS_LABELS
            .iter()
            .position(|&l| l == self.label())
    }

    /// Iterator over the contained regions in D, H, S order.
    pub fn iter(self) -> impl Iterator<Item = Region> {
        Region::DATA_REGIONS
            .into_iter()
            .filter(move |&r| self.contains(r))
    }
}

impl fmt::Debug for RegionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RegionSet({})", self.label())
    }
}

impl fmt::Display for RegionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromIterator<Region> for RegionSet {
    fn from_iter<I: IntoIterator<Item = Region>>(iter: I) -> RegionSet {
        let mut s = RegionSet::EMPTY;
        for r in iter {
            s.insert(r);
        }
        s
    }
}

impl Extend<Region> for RegionSet {
    fn extend<I: IntoIterator<Item = Region>>(&mut self, iter: I) {
        for r in iter {
            self.insert(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_cover_all_classes() {
        let mut seen = Vec::new();
        for bits in 1u8..8 {
            let set = RegionSet(bits);
            seen.push(set.label());
        }
        for expected in RegionSet::CLASS_LABELS {
            assert!(seen.contains(&expected), "missing class {expected}");
        }
    }

    #[test]
    fn single_region_detection() {
        let mut s = RegionSet::only(Region::Heap);
        assert!(s.is_single_region());
        assert_eq!(s.label(), "H");
        s.insert(Region::Stack);
        assert!(!s.is_single_region());
        assert_eq!(s.label(), "H/S");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn stack_and_non_stack_queries() {
        let s: RegionSet = [Region::Data, Region::Stack].into_iter().collect();
        assert!(s.touches_stack());
        assert!(s.touches_non_stack());
        let d = RegionSet::only(Region::Data);
        assert!(!d.touches_stack());
        assert!(d.touches_non_stack());
    }

    #[test]
    fn class_index_matches_labels() {
        assert_eq!(RegionSet::only(Region::Data).class_index(), Some(0));
        assert_eq!(RegionSet::only(Region::Stack).class_index(), Some(2));
        assert_eq!(RegionSet::EMPTY.class_index(), None);
        let dhs: RegionSet = Region::DATA_REGIONS.into_iter().collect();
        assert_eq!(dhs.class_index(), Some(6));
    }

    #[test]
    #[should_panic(expected = "text is not a data access region")]
    fn text_is_rejected() {
        let _ = RegionSet::only(Region::Text);
    }

    #[test]
    fn iter_in_order() {
        let s: RegionSet = [Region::Stack, Region::Data].into_iter().collect();
        let v: Vec<Region> = s.iter().collect();
        assert_eq!(v, vec![Region::Data, Region::Stack]);
    }
}
