//! TLB with per-page stack bits.

use std::collections::HashMap;

use crate::image::PAGE_SIZE;
use crate::layout::Layout;

/// The structure the paper adds to the memory stage: "Each TLB entry is
/// extended with a single bit indicating whether the translated page belongs
/// to the stack or not" (Section 4.2).
///
/// Translation itself is identity-mapped and never faults (the paper models
/// no TLB misses), so the interesting state is the stack bit, filled in
/// lazily from the [`Layout`] — the moral equivalent of the run-time system
/// tagging the page at allocation time. Lookup statistics are kept so the
/// timing model can report verification traffic.
#[derive(Clone, Debug)]
pub struct StackBitTlb {
    layout: Layout,
    stack_bits: HashMap<u64, bool>,
    lookups: u64,
    filled: u64,
}

impl StackBitTlb {
    /// Creates a TLB over the given layout.
    pub fn new(layout: Layout) -> StackBitTlb {
        StackBitTlb {
            layout,
            stack_bits: HashMap::new(),
            lookups: 0,
            filled: 0,
        }
    }

    /// Translates `addr` and returns its page's stack bit. This is where the
    /// data-decoupled pipeline verifies an access-region prediction.
    pub fn is_stack_page(&mut self, addr: u64) -> bool {
        self.lookups += 1;
        let page = addr / PAGE_SIZE;
        let layout = self.layout;
        *self.stack_bits.entry(page).or_insert_with(|| {
            self.filled += 1;
            layout.is_stack(addr)
        })
    }

    /// Total lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Number of distinct pages whose stack bit has been installed.
    pub fn pages_tagged(&self) -> u64 {
        self.filled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_bit_matches_layout() {
        let layout = Layout::default();
        let mut tlb = StackBitTlb::new(layout);
        assert!(!tlb.is_stack_page(layout.data_base()));
        assert!(!tlb.is_stack_page(layout.heap_base() + 64));
        assert!(tlb.is_stack_page(layout.stack_top() - 8));
    }

    #[test]
    fn pages_are_tagged_once() {
        let layout = Layout::default();
        let mut tlb = StackBitTlb::new(layout);
        let addr = layout.stack_top() - 100;
        tlb.is_stack_page(addr);
        tlb.is_stack_page(addr + 4);
        tlb.is_stack_page(addr - 4);
        assert_eq!(tlb.lookups(), 3);
        assert_eq!(tlb.pages_tagged(), 1);
    }
}
