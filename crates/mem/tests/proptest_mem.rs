//! Property tests for the memory substrate.

#![cfg(feature = "proptest-tests")]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use arl_mem::{HeapAllocator, Layout, MemImage, Region};
use proptest::prelude::*;

proptest! {
    /// Region classification is a total partition of the address space:
    /// exactly one region per address, consistent with `is_stack`.
    #[test]
    fn classification_is_total_and_consistent(addr in any::<u64>()) {
        let layout = Layout::default();
        let region = layout.classify(addr);
        prop_assert_eq!(layout.is_stack(addr), region == Region::Stack);
    }

    /// Memory image: the last write wins and distinct addresses don't alias.
    #[test]
    fn image_writes_are_isolated(
        a in 0u64..1 << 40,
        b in 0u64..1 << 40,
        va in any::<u8>(),
        vb in any::<u8>(),
    ) {
        prop_assume!(a != b);
        let mut m = MemImage::new();
        m.write_u8(a, va);
        m.write_u8(b, vb);
        prop_assert_eq!(m.read_u8(a), va);
        prop_assert_eq!(m.read_u8(b), vb);
    }

    /// u64 round-trips at any (possibly unaligned, page-crossing) address.
    #[test]
    fn image_u64_round_trip(addr in 0u64..1 << 40, v in any::<u64>()) {
        let mut m = MemImage::new();
        m.write_u64(addr, v);
        prop_assert_eq!(m.read_u64(addr), v);
    }

    /// Allocator: a random mix of mallocs and frees never yields overlapping
    /// live blocks, and every block stays inside the heap segment.
    #[test]
    fn allocator_blocks_never_overlap(ops in proptest::collection::vec((any::<bool>(), 1u64..4096), 1..64)) {
        let layout = Layout::default();
        let mut a = HeapAllocator::new(&layout);
        let mut live: Vec<(u64, u64)> = Vec::new();
        for (do_free, size) in ops {
            if do_free && !live.is_empty() {
                let (addr, _) = live.swap_remove(0);
                a.free(addr).unwrap();
            } else {
                let addr = a.malloc(size).unwrap();
                prop_assert!(addr >= layout.heap_base());
                prop_assert!(addr + size <= layout.heap_limit());
                for &(other, other_size) in &live {
                    let disjoint = addr + size <= other || other + other_size <= addr;
                    prop_assert!(disjoint, "{addr:#x}+{size} overlaps {other:#x}+{other_size}");
                }
                live.push((addr, size));
            }
        }
        // Free everything; usage must return to zero and brk to base.
        for (addr, _) in live {
            a.free(addr).unwrap();
        }
        prop_assert_eq!(a.bytes_in_use(), 0);
        prop_assert_eq!(a.brk(), layout.heap_base());
    }
}
