//! # proptest (offline shim)
//!
//! A minimal, dependency-free re-implementation of the subset of the
//! [proptest](https://crates.io/crates/proptest) API this workspace's
//! property tests use. The build environment for this repository has no
//! access to a crates registry, so the real crate cannot be vendored; this
//! shim keeps the property tests compiling and running (deterministically)
//! with the same source text.
//!
//! Supported surface:
//!
//! * [`Strategy`](strategy::Strategy) with
//!   [`prop_map`](strategy::Strategy::prop_map), implemented for integer
//!   ranges (`Range`/`RangeInclusive`), tuples of strategies (arity ≤ 6),
//!   [`Just`](strategy::Just), [`any`](strategy::any), and
//!   [`collection::vec`](collection::vec()).
//! * [`proptest!`] blocks (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//!   [`prop_oneof!`] (plain and weighted arms), [`prop_assert!`],
//!   [`prop_assert_eq!`], [`prop_assert_ne!`] and [`prop_assume!`].
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs via the
//!   ordinary panic message; it is not minimised.
//! * **Deterministic generation.** Each `(test name, case index)` pair
//!   seeds a SplitMix64 stream, so runs are reproducible and thread count
//!   never changes outcomes. `proptest-regressions` files are ignored.
//! * The default case count is 64 (real proptest: 256) to keep the suite
//!   fast on small containers.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The near-universal import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests. Each function body is run for
/// `ProptestConfig::cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @config ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            @config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@config ($config:expr)) => {};
    (@config ($config:expr)
        $(#[$attr:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                { $body }
            }
        }
        $crate::__proptest_fns! { @config ($config) $($rest)* }
    };
}

/// Picks one of several strategies, uniformly or by the given weights.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u64, $crate::strategy::Union::arm($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u64, $crate::strategy::Union::arm($strat))),+
        ])
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current generated case when the precondition fails.
///
/// Expands to `continue`, so it is only valid directly inside a
/// [`proptest!`] body (as in real proptest).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}
