//! Configuration and the deterministic per-case random stream.

/// Mirror of `proptest::test_runner::Config` for the one field the suite
/// sets.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// SplitMix64 stream, seeded from the test name and case index so every
/// run of the suite generates identical inputs.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream for one `(test, case)` pair.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut h = 0xcbf29ce484222325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15)),
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let mut a = TestRng::for_case("t::x", 0);
        let mut b = TestRng::for_case("t::x", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t::x", 1);
        let mut d = TestRng::for_case("t::y", 0);
        let first = TestRng::for_case("t::x", 0).next_u64();
        assert_ne!(c.next_u64(), first);
        assert_ne!(d.next_u64(), first);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::for_case("bound", 0);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
