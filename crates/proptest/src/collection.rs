//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length distribution for generated collections.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n + 1 }
    }
}

/// The strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates a `Vec` whose length falls in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_fall_in_range() {
        let strat = vec(0u8..10, 2..5);
        let mut rng = TestRng::for_case("vec-len", 0);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn exact_and_inclusive_sizes() {
        let mut rng = TestRng::for_case("vec-exact", 0);
        assert_eq!(vec(0u8..2, 3usize).generate(&mut rng).len(), 3);
        let v = vec(0u8..2, 1usize..=2).generate(&mut rng);
        assert!((1..=2).contains(&v.len()));
    }
}
