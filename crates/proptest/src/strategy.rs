//! Value-generation strategies (the generation half of proptest's
//! `Strategy`, without shrinking).

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value from the random stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (proptest's `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Generates any value of `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                    if span > u64::MAX as u128 {
                        // Full-width range: any value works.
                        return rng.next_u64() as $t;
                    }
                    (*self.start() as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        )*
    };
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Weighted choice between boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u64, Box<dyn Strategy<Value = V>>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u64, Box<dyn Strategy<Value = V>>)>) -> Union<V> {
        let total_weight = arms.iter().map(|(w, _)| *w).sum();
        assert!(total_weight > 0, "prop_oneof! needs positive total weight");
        Union { arms, total_weight }
    }

    /// Boxes one arm (used by the `prop_oneof!` expansion).
    pub fn arm<S: Strategy<Value = V> + 'static>(strategy: S) -> Box<dyn Strategy<Value = V>> {
        Box::new(strategy)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total_weight);
        for (weight, strat) in &self.arms {
            if pick < *weight {
                return strat.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weights cover the sampled value")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy-tests", 0)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (10u8..20).generate(&mut r);
            assert!((10..20).contains(&v));
            let w = (-5i16..=5).generate(&mut r);
            assert!((-5..=5).contains(&w));
            let f = (0u64..=u64::MAX).generate(&mut r);
            let _ = f; // full-width range must not panic
        }
    }

    #[test]
    fn map_and_tuples_compose() {
        let strat = (0u8..4, 0u8..4).prop_map(|(a, b)| (a as u16) * 10 + b as u16);
        let mut r = rng();
        for _ in 0..100 {
            let v = strat.generate(&mut r);
            assert!(v % 10 < 4 && v / 10 < 4);
        }
    }

    #[test]
    fn union_respects_weights() {
        let u = Union::new(vec![
            (1, Union::arm(Just(false))),
            (3, Union::arm(Just(true))),
        ]);
        let mut r = rng();
        let trues = (0..2000).filter(|_| u.generate(&mut r)).count();
        // 3:1 weighting — expect ~1500 trues; huge tolerance, just shape.
        assert!((1200..1800).contains(&trues), "weighted pick: {trues}");
    }
}
