//! Property tests for the profilers over synthetic trace streams.

#![cfg(feature = "proptest-tests")]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use arl_isa::{Gpr, Inst, Width};
use arl_mem::Region;
use arl_sim::{MemAccess, RegionProfiler, SlidingWindowProfiler, TraceEntry, WorkloadCharacter};
use proptest::prelude::*;

fn entry(pc: u64, region: Option<Region>, is_load: bool) -> TraceEntry {
    TraceEntry {
        pc,
        inst: if region.is_some() {
            Inst::Load {
                width: Width::Double,
                signed: true,
                rd: Gpr::T0,
                base: Gpr::T1,
                offset: 0,
            }
        } else {
            Inst::Nop
        },
        mem: region.map(|r| MemAccess {
            addr: 0x1000_0000,
            width: Width::Double,
            is_load,
            region: r,
        }),
        taken: false,
        next_pc: pc + 8,
        gpr_write: None,
        ghr: 0,
        ra: 0,
        model: arl_sim::ModelHints::NONE,
    }
}

fn region_opt() -> impl Strategy<Value = Option<Region>> {
    prop_oneof![
        2 => Just(None),
        1 => Just(Some(Region::Data)),
        1 => Just(Some(Region::Heap)),
        1 => Just(Some(Region::Stack)),
    ]
}

fn trace() -> impl Strategy<Value = Vec<TraceEntry>> {
    proptest::collection::vec(
        (
            (0u64..64).prop_map(|i| 0x40_0000 + i * 8),
            region_opt(),
            any::<bool>(),
        ),
        1..500,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(pc, region, is_load)| entry(pc, region, is_load))
            .collect()
    })
}

proptest! {
    /// The breakdown's dynamic totals equal the reference count, and the
    /// static counts equal the number of distinct memory pcs.
    #[test]
    fn breakdown_is_an_exact_partition(t in trace()) {
        let mut p = RegionProfiler::new();
        let mut c = WorkloadCharacter::default();
        for e in &t {
            p.observe(e);
            c.observe(e);
        }
        let b = p.breakdown();
        prop_assert_eq!(b.dynamic_total(), c.references());
        let distinct_pcs: std::collections::HashSet<u64> =
            t.iter().filter(|e| e.mem.is_some()).map(|e| e.pc).collect();
        prop_assert_eq!(b.static_total() as usize, distinct_pcs.len());
        prop_assert_eq!(c.per_region.iter().sum::<u64>(), c.references());
        prop_assert_eq!(p.static_instructions(), distinct_pcs.len());
    }

    /// The sliding-window mean equals the whole-stream density × window
    /// size (up to edge effects, which vanish when the stream is an exact
    /// multiple of a repeating pattern).
    #[test]
    fn window_mean_matches_density(
        pattern in proptest::collection::vec(region_opt(), 1..32),
        reps in 8usize..32,
    ) {
        let window = pattern.len();
        let mut p = SlidingWindowProfiler::with_windows(&[window]);
        for _ in 0..reps {
            for (i, r) in pattern.iter().enumerate() {
                p.observe(&entry(0x40_0000 + i as u64 * 8, *r, true));
            }
        }
        let stats = &p.stats()[0];
        // Every full window over a periodic stream with period == window
        // holds exactly the per-period counts.
        for region in Region::DATA_REGIONS {
            let per_period = pattern.iter().flatten().filter(|&&r| r == region).count();
            prop_assert!((stats.mean(region) - per_period as f64).abs() < 1e-9);
            prop_assert!(stats.stddev(region) < 1e-9, "periodic stream has no variance");
        }
    }

    /// Observation order of non-overlapping pcs doesn't change the final
    /// breakdown (the profiler is a commutative accumulator per pc).
    #[test]
    fn breakdown_is_order_insensitive(t in trace()) {
        let mut forward = RegionProfiler::new();
        for e in &t {
            forward.observe(e);
        }
        let mut backward = RegionProfiler::new();
        for e in t.iter().rev() {
            backward.observe(e);
        }
        let (fb, bb) = (forward.breakdown(), backward.breakdown());
        prop_assert_eq!(fb.static_counts, bb.static_counts);
        prop_assert_eq!(fb.dynamic_counts, bb.dynamic_counts);
    }
}
