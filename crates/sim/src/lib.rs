//! # arl-sim — functional simulation and profiling
//!
//! The analog of SimpleScalar's `sim-profile` (paper Section 3.1): "In each
//! simulated cycle, it fetches and executes one instruction as specified in
//! the program. While doing so, it collects desired information, i.e., which
//! region(s) a memory reference instruction accesses."
//!
//! * [`Machine`] executes a linked [`arl_asm::Program`], producing a stream
//!   of [`TraceEntry`] records (one per retired instruction) that carries
//!   everything the profilers and the timing simulator need: the memory
//!   access and its region, the written register value, the branch outcome,
//!   and the run-time context (global branch history, link register).
//! * [`RegionProfiler`] reproduces Figure 2's static breakdown and the
//!   dynamic share of multi-region instructions.
//! * [`SlidingWindowProfiler`] reproduces Table 2's per-region
//!   mean/standard-deviation window statistics.
//! * [`characterize`] reproduces Table 1's instruction-mix columns.
//!
//! ```
//! use arl_asm::{FunctionBuilder, ProgramBuilder};
//! use arl_isa::Gpr;
//! use arl_sim::Machine;
//!
//! let mut pb = ProgramBuilder::new();
//! let mut f = FunctionBuilder::new("main");
//! f.li(Gpr::A0, 42);
//! f.print_int(Gpr::A0);
//! pb.add_function(f);
//! let program = pb.link("main")?;
//!
//! let mut m = Machine::new(&program);
//! m.run(1_000_000)?;
//! assert_eq!(m.output(), &[42]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod exec;
mod metrics;
mod profile;
mod trace;
mod window;

pub use exec::{ExecError, Machine, RunOutcome};
pub use metrics::Metrics;
pub use profile::{characterize, RegionBreakdown, RegionProfiler, WorkloadCharacter};
pub use trace::{EntrySliceSource, MemAccess, ModelHints, SourceError, TraceEntry, TraceSource};
pub use window::{SlidingWindowProfiler, WindowStats};

use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of instructions executed *functionally* (via
/// [`Machine`]), across all threads. Trace replay does not advance it, so
/// the execute-once/replay-many pipeline can audit that each workload was
/// executed exactly once per experiment.
static FUNCTIONAL_INSTRUCTIONS: AtomicU64 = AtomicU64::new(0);

/// Monotonic count of functionally executed instructions in this process.
pub fn functional_instructions_executed() -> u64 {
    FUNCTIONAL_INSTRUCTIONS.load(Ordering::Relaxed)
}

pub(crate) fn count_functional_instructions(n: u64) {
    if n > 0 {
        FUNCTIONAL_INSTRUCTIONS.fetch_add(n, Ordering::Relaxed);
    }
}
