//! The functional executor.

use std::error::Error;
use std::fmt;

use arl_asm::Program;
use arl_isa::{AluOp, FAluOp, FCmpOp, Gpr, Inst, Syscall, Width, INST_BYTES};
use arl_mem::{AllocError, HeapAllocator, Layout, MemImage};

use crate::trace::{MemAccess, SourceError, TraceEntry, TraceSource};

/// Errors raised during execution.
#[derive(Debug)]
pub enum ExecError {
    /// The pc left the text segment or became misaligned.
    BadPc {
        /// The offending pc.
        pc: u64,
    },
    /// A heap operation failed (out of memory, bad free).
    Alloc(AllocError),
    /// The stack grew below the stack region.
    StackOverflow {
        /// The stack pointer value that escaped the region.
        sp: u64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::BadPc { pc } => write!(f, "pc {pc:#x} is outside the text segment"),
            ExecError::Alloc(e) => write!(f, "heap error: {e}"),
            ExecError::StackOverflow { sp } => write!(f, "stack overflow: sp = {sp:#x}"),
        }
    }
}

impl Error for ExecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExecError::Alloc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AllocError> for ExecError {
    fn from(e: AllocError) -> ExecError {
        ExecError::Alloc(e)
    }
}

/// Result of a bounded [`Machine::run`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RunOutcome {
    /// Instructions retired during this call.
    pub retired: u64,
    /// Whether the program executed its `Exit` syscall.
    pub exited: bool,
}

/// The functional machine: architectural registers, memory, heap, and the
/// run-time contexts the predictors consume.
///
/// Executes one instruction per [`Machine::step`], emitting a
/// [`TraceEntry`]. This is the paper's profiling simulator and, because the
/// timing model assumes a perfect front end, also the instruction feed for
/// the cycle-level simulator in `arl-timing`.
#[derive(Clone, Debug)]
pub struct Machine<'p> {
    program: &'p Program,
    layout: Layout,
    gpr: [i64; 32],
    fpr: [f64; 32],
    pc: u64,
    mem: MemImage,
    alloc: HeapAllocator,
    ghr: u64,
    output: Vec<i64>,
    retired: u64,
    exited: bool,
}

impl<'p> Machine<'p> {
    /// Creates a machine with the program's data segment installed and all
    /// registers zero (the `_start` stub initializes `$gp`/`$sp`/`$fp`).
    pub fn new(program: &'p Program) -> Machine<'p> {
        let layout = *program.layout();
        let mut mem = MemImage::new();
        mem.write_bytes(layout.data_base(), program.data_image());
        Machine {
            program,
            layout,
            gpr: [0; 32],
            fpr: [0.0; 32],
            pc: program.entry_pc(),
            mem,
            alloc: HeapAllocator::new(&layout),
            ghr: 0,
            output: Vec::new(),
            retired: 0,
            exited: false,
        }
    }

    /// The program being executed.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Current pc.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Whether the program has exited.
    pub fn exited(&self) -> bool {
        self.exited
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Values printed by `PrintInt`/`PrintChar` so far.
    pub fn output(&self) -> &[i64] {
        &self.output
    }

    /// Reads a GPR (for tests and debugging).
    pub fn gpr(&self, r: Gpr) -> i64 {
        self.gpr[r.index()]
    }

    /// Reads an architectural memory location (for tests and debugging).
    pub fn mem(&self) -> &MemImage {
        &self.mem
    }

    /// Snapshot of the run's counters (see [`crate::Metrics`]).
    pub fn metrics(&self) -> crate::Metrics {
        crate::Metrics::capture(
            self.retired,
            self.mem.resident_pages(),
            self.output.len(),
            self.exited,
        )
    }

    fn write_gpr(&mut self, r: Gpr, v: i64) {
        if r != Gpr::ZERO {
            self.gpr[r.index()] = v;
        }
    }

    fn load_value(&self, addr: u64, width: Width, signed: bool) -> i64 {
        match (width, signed) {
            (Width::Byte, false) => self.mem.read_u8(addr) as i64,
            (Width::Byte, true) => self.mem.read_u8(addr) as i8 as i64,
            (Width::Half, false) => self.mem.read_u16(addr) as i64,
            (Width::Half, true) => self.mem.read_u16(addr) as i16 as i64,
            (Width::Word, false) => self.mem.read_u32(addr) as i64,
            (Width::Word, true) => self.mem.read_u32(addr) as i32 as i64,
            (Width::Double, _) => self.mem.read_u64(addr) as i64,
        }
    }

    fn store_value(&mut self, addr: u64, width: Width, v: i64) {
        match width {
            Width::Byte => self.mem.write_u8(addr, v as u8),
            Width::Half => self.mem.write_u16(addr, v as u16),
            Width::Word => self.mem.write_u32(addr, v as u32),
            Width::Double => self.mem.write_u64(addr, v as u64),
        }
    }

    fn alu(op: AluOp, a: i64, b: i64) -> i64 {
        match op {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    a
                } else {
                    a.wrapping_rem(b)
                }
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => ((a as u64) << (b as u64 & 63)) as i64,
            AluOp::Srl => ((a as u64) >> (b as u64 & 63)) as i64,
            AluOp::Sra => a >> (b as u64 & 63),
            AluOp::Slt => (a < b) as i64,
            AluOp::Sltu => ((a as u64) < (b as u64)) as i64,
        }
    }

    /// Immediate operand semantics: logical ops zero-extend, the rest
    /// sign-extend (MIPS convention; `li` relies on `ori` zero-extending).
    fn imm_operand(op: AluOp, imm: i16) -> i64 {
        match op {
            AluOp::And | AluOp::Or | AluOp::Xor => imm as u16 as i64,
            _ => imm as i64,
        }
    }

    fn falu(op: FAluOp, a: f64, b: f64) -> f64 {
        match op {
            FAluOp::Add => a + b,
            FAluOp::Sub => a - b,
            FAluOp::Mul => a * b,
            FAluOp::Div => a / b,
            FAluOp::Neg => -a,
            FAluOp::Abs => a.abs(),
            FAluOp::Sqrt => a.abs().sqrt(),
        }
    }

    /// Executes one instruction.
    ///
    /// Returns `Ok(None)` once the program has exited.
    ///
    /// # Errors
    ///
    /// See [`ExecError`].
    pub fn step(&mut self) -> Result<Option<TraceEntry>, ExecError> {
        if self.exited {
            return Ok(None);
        }
        let pc = self.pc;
        let inst = *self.program.inst_at(pc).ok_or(ExecError::BadPc { pc })?;
        let ghr_before = self.ghr;
        let ra_before = self.gpr[Gpr::RA.index()] as u64;
        let mut mem_access: Option<MemAccess> = None;
        let mut taken = false;
        let mut gpr_write: Option<(Gpr, i64)> = None;
        let mut next_pc = pc + INST_BYTES;

        match inst {
            Inst::Nop => {}
            Inst::Alu { op, rd, rs, rt } => {
                let v = Self::alu(op, self.gpr[rs.index()], self.gpr[rt.index()]);
                self.write_gpr(rd, v);
                if rd != Gpr::ZERO {
                    gpr_write = Some((rd, v));
                }
            }
            Inst::AluI { op, rd, rs, imm } => {
                let v = Self::alu(op, self.gpr[rs.index()], Self::imm_operand(op, imm));
                self.write_gpr(rd, v);
                if rd != Gpr::ZERO {
                    gpr_write = Some((rd, v));
                }
                if rd == Gpr::SP {
                    let sp = v as u64;
                    if sp < self.layout.stack_base() {
                        return Err(ExecError::StackOverflow { sp });
                    }
                }
            }
            Inst::Lui { rd, imm } => {
                let v = ((imm as u32) << 16) as i32 as i64;
                self.write_gpr(rd, v);
                if rd != Gpr::ZERO {
                    gpr_write = Some((rd, v));
                }
            }
            Inst::Load {
                width,
                signed,
                rd,
                base,
                offset,
            } => {
                let addr = (self.gpr[base.index()] as u64).wrapping_add(offset as i64 as u64);
                let v = self.load_value(addr, width, signed);
                self.write_gpr(rd, v);
                if rd != Gpr::ZERO {
                    gpr_write = Some((rd, v));
                }
                mem_access = Some(MemAccess {
                    addr,
                    width,
                    is_load: true,
                    region: self.layout.classify(addr),
                });
            }
            Inst::Store {
                width,
                rs,
                base,
                offset,
            } => {
                let addr = (self.gpr[base.index()] as u64).wrapping_add(offset as i64 as u64);
                self.store_value(addr, width, self.gpr[rs.index()]);
                mem_access = Some(MemAccess {
                    addr,
                    width,
                    is_load: false,
                    region: self.layout.classify(addr),
                });
            }
            Inst::FLoad { fd, base, offset } => {
                let addr = (self.gpr[base.index()] as u64).wrapping_add(offset as i64 as u64);
                self.fpr[fd.index()] = self.mem.read_f64(addr);
                mem_access = Some(MemAccess {
                    addr,
                    width: Width::Double,
                    is_load: true,
                    region: self.layout.classify(addr),
                });
            }
            Inst::FStore { fs, base, offset } => {
                let addr = (self.gpr[base.index()] as u64).wrapping_add(offset as i64 as u64);
                self.mem.write_f64(addr, self.fpr[fs.index()]);
                mem_access = Some(MemAccess {
                    addr,
                    width: Width::Double,
                    is_load: false,
                    region: self.layout.classify(addr),
                });
            }
            Inst::FAlu { op, fd, fs, ft } => {
                self.fpr[fd.index()] = Self::falu(op, self.fpr[fs.index()], self.fpr[ft.index()]);
            }
            Inst::FCmp { op, rd, fs, ft } => {
                let a = self.fpr[fs.index()];
                let b = self.fpr[ft.index()];
                let v = match op {
                    FCmpOp::Lt => a < b,
                    FCmpOp::Le => a <= b,
                    FCmpOp::Eq => a == b,
                } as i64;
                self.write_gpr(rd, v);
                if rd != Gpr::ZERO {
                    gpr_write = Some((rd, v));
                }
            }
            Inst::CvtIf { fd, rs } => {
                self.fpr[fd.index()] = self.gpr[rs.index()] as f64;
            }
            Inst::CvtFi { rd, fs } => {
                let f = self.fpr[fs.index()];
                let v = if f.is_nan() { 0 } else { f as i64 };
                self.write_gpr(rd, v);
                if rd != Gpr::ZERO {
                    gpr_write = Some((rd, v));
                }
            }
            Inst::Branch {
                cond,
                rs,
                rt,
                target,
            } => {
                taken = cond.eval(self.gpr[rs.index()], self.gpr[rt.index()]);
                if taken {
                    next_pc = target;
                }
                self.ghr = (self.ghr << 1) | taken as u64;
            }
            Inst::Jump { target } => {
                next_pc = target;
            }
            Inst::Jal { target } => {
                let link = (pc + INST_BYTES) as i64;
                self.write_gpr(Gpr::RA, link);
                gpr_write = Some((Gpr::RA, link));
                next_pc = target;
            }
            Inst::Jr { rs } => {
                next_pc = self.gpr[rs.index()] as u64;
            }
            Inst::Jalr { rd, rs } => {
                let link = (pc + INST_BYTES) as i64;
                next_pc = self.gpr[rs.index()] as u64;
                self.write_gpr(rd, link);
                if rd != Gpr::ZERO {
                    gpr_write = Some((rd, link));
                }
            }
            Inst::Sys { call } => match call {
                Syscall::Exit => {
                    self.exited = true;
                    next_pc = pc;
                }
                Syscall::Malloc => {
                    let size = self.gpr[Gpr::A0.index()].max(0) as u64;
                    let addr = self.alloc.malloc(size)? as i64;
                    self.write_gpr(Gpr::V0, addr);
                    gpr_write = Some((Gpr::V0, addr));
                }
                Syscall::Free => {
                    let addr = self.gpr[Gpr::A0.index()] as u64;
                    self.alloc.free(addr)?;
                }
                Syscall::PrintInt => {
                    self.output.push(self.gpr[Gpr::A0.index()]);
                }
                Syscall::PrintChar => {
                    self.output.push(self.gpr[Gpr::A0.index()] & 0xff);
                }
            },
        }

        self.pc = next_pc;
        self.retired += 1;
        Ok(Some(TraceEntry {
            pc,
            inst,
            mem: mem_access,
            taken,
            next_pc,
            gpr_write,
            ghr: ghr_before,
            ra: ra_before,
            model: crate::trace::ModelHints::NONE,
        }))
    }

    /// Runs until exit or until `max_insts` more instructions retire.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ExecError`].
    pub fn run(&mut self, max_insts: u64) -> Result<RunOutcome, ExecError> {
        self.run_with(max_insts, |_| {})
    }

    /// Runs like [`Machine::run`], passing every [`TraceEntry`] to
    /// `visitor` — the streaming interface the profilers and the timing
    /// simulator use (the trace is never materialized in memory).
    ///
    /// # Errors
    ///
    /// Propagates the first [`ExecError`].
    pub fn run_with<F: FnMut(&TraceEntry)>(
        &mut self,
        max_insts: u64,
        mut visitor: F,
    ) -> Result<RunOutcome, ExecError> {
        let mut retired = 0;
        while retired < max_insts {
            match self.step()? {
                Some(entry) => {
                    retired += 1;
                    visitor(&entry);
                }
                None => break,
            }
        }
        crate::count_functional_instructions(retired);
        Ok(RunOutcome {
            retired,
            exited: self.exited,
        })
    }
}

/// The live executor is the canonical [`TraceSource`]: each entry costs one
/// step of real functional execution (and bumps the process-wide
/// [`functional_instructions_executed`](crate::functional_instructions_executed)
/// counter the execute-once tests audit).
impl TraceSource for Machine<'_> {
    fn next_entry(&mut self) -> Result<Option<TraceEntry>, SourceError> {
        let entry = self.step()?;
        crate::count_functional_instructions(entry.is_some() as u64);
        Ok(entry)
    }

    fn metrics(&self) -> crate::Metrics {
        Machine::metrics(self)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use arl_asm::{FunctionBuilder, ProgramBuilder, Provenance};
    use arl_isa::BranchCond;
    use arl_mem::Region;

    fn run_program(build: impl FnOnce(&mut ProgramBuilder)) -> (Vec<i64>, Vec<TraceEntry>) {
        let mut pb = ProgramBuilder::new();
        build(&mut pb);
        let p = pb.link("main").expect("link");
        let mut m = Machine::new(&p);
        let mut entries = Vec::new();
        let outcome = m
            .run_with(1_000_000, |e| entries.push(*e))
            .expect("execution");
        assert!(outcome.exited, "program must exit");
        (m.output().to_vec(), entries)
    }

    #[test]
    fn arithmetic_loop_sums_correctly() {
        let (out, _) = run_program(|pb| {
            let mut f = FunctionBuilder::new("main");
            // sum = 0; for i in 1..=10 { sum += i }
            f.li(Gpr::T0, 0);
            f.li(Gpr::T1, 1);
            let top = f.new_label();
            f.bind(top);
            f.add(Gpr::T0, Gpr::T0, Gpr::T1);
            f.addi(Gpr::T1, Gpr::T1, 1);
            f.li(Gpr::T2, 10);
            f.br(BranchCond::Le, Gpr::T1, Gpr::T2, top);
            f.print_int(Gpr::T0);
            pb.add_function(f);
        });
        assert_eq!(out, vec![55]);
    }

    #[test]
    fn regions_are_classified_in_trace() {
        let (_, entries) = run_program(|pb| {
            let g = pb.global_zeroed("g", 8);
            let mut f = FunctionBuilder::new("main");
            let slot = f.local(8);
            f.li(Gpr::T0, 7);
            f.store_local(Gpr::T0, slot, 0); // stack
            f.store_global(Gpr::T0, g, 0); // data
            f.malloc_imm(64); // heap pointer in v0
            f.store_ptr(Gpr::T0, Gpr::V0, 0, Provenance::HeapBlock); // heap
            pb.add_function(f);
        });
        let regions: Vec<Region> = entries
            .iter()
            .filter_map(|e| e.mem)
            .filter(|m| !m.is_load)
            .map(|m| m.region)
            .collect();
        assert!(regions.contains(&Region::Stack));
        assert!(regions.contains(&Region::Data));
        assert!(regions.contains(&Region::Heap));
    }

    #[test]
    fn calls_preserve_callee_saved_and_return() {
        let (out, _) = run_program(|pb| {
            let mut aux = FunctionBuilder::new("square");
            aux.mul(Gpr::V0, Gpr::A0, Gpr::A0);
            pb.add_function(aux);

            let mut f = FunctionBuilder::new("main");
            f.save(&[Gpr::S0]);
            f.li(Gpr::S0, 9);
            f.li(Gpr::A0, 6);
            f.call("square");
            f.add(Gpr::A0, Gpr::V0, Gpr::S0); // 36 + 9
            f.syscall(arl_isa::Syscall::PrintInt);
            pb.add_function(f);
        });
        assert_eq!(out, vec![45]);
    }

    #[test]
    fn ghr_records_branch_outcomes() {
        let (_, entries) = run_program(|pb| {
            let mut f = FunctionBuilder::new("main");
            f.li(Gpr::T0, 3);
            let top = f.new_label();
            f.bind(top);
            f.addi(Gpr::T0, Gpr::T0, -1);
            f.br(BranchCond::Gt, Gpr::T0, Gpr::ZERO, top); // T,T,N
            pb.add_function(f);
        });
        let last = entries.last().unwrap();
        // After two taken and one not-taken branch, ghr(ends) = 0b110.
        assert_eq!(last.ghr & 0b111, 0b110);
    }

    #[test]
    fn heap_round_trip_through_memory() {
        let (out, _) = run_program(|pb| {
            let mut f = FunctionBuilder::new("main");
            f.malloc_imm(16);
            f.mov(Gpr::S0, Gpr::V0);
            f.li(Gpr::T0, 1234);
            f.store_ptr(Gpr::T0, Gpr::S0, 8, Provenance::HeapBlock);
            f.load_ptr(Gpr::A0, Gpr::S0, 8, Provenance::HeapBlock);
            f.syscall(arl_isa::Syscall::PrintInt);
            f.mov(Gpr::A0, Gpr::S0);
            f.free();
            pb.add_function(f);
        });
        assert_eq!(out, vec![1234]);
    }

    #[test]
    fn initialized_globals_are_visible() {
        let (out, _) = run_program(|pb| {
            let g = pb.global_words("tbl", &[10, 20, 30]);
            let mut f = FunctionBuilder::new("main");
            f.load_global(Gpr::A0, g, 16); // third word
            f.syscall(arl_isa::Syscall::PrintInt);
            pb.add_function(f);
        });
        assert_eq!(out, vec![30]);
    }

    #[test]
    fn fp_pipeline_works() {
        let (out, _) = run_program(|pb| {
            let mut f = FunctionBuilder::new("main");
            f.li(Gpr::T0, 3);
            f.cvt_if(arl_isa::Fpr::F0, Gpr::T0);
            f.li(Gpr::T1, 4);
            f.cvt_if(arl_isa::Fpr::F1, Gpr::T1);
            f.fmul(arl_isa::Fpr::F2, arl_isa::Fpr::F0, arl_isa::Fpr::F0);
            f.fmul(arl_isa::Fpr::F3, arl_isa::Fpr::F1, arl_isa::Fpr::F1);
            f.fadd(arl_isa::Fpr::F2, arl_isa::Fpr::F2, arl_isa::Fpr::F3);
            f.falu(
                arl_isa::FAluOp::Sqrt,
                arl_isa::Fpr::F2,
                arl_isa::Fpr::F2,
                arl_isa::Fpr::F2,
            );
            f.cvt_fi(Gpr::A0, arl_isa::Fpr::F2);
            f.syscall(arl_isa::Syscall::PrintInt);
            pb.add_function(f);
        });
        assert_eq!(out, vec![5]);
    }

    #[test]
    fn step_after_exit_returns_none() {
        let mut pb = ProgramBuilder::new();
        let f = FunctionBuilder::new("main");
        pb.add_function(f);
        let p = pb.link("main").unwrap();
        let mut m = Machine::new(&p);
        m.run(1_000).unwrap();
        assert!(m.exited());
        assert!(m.step().unwrap().is_none());
    }

    #[test]
    fn run_respects_instruction_budget() {
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("main");
        let top = f.new_label();
        f.bind(top);
        f.j(top); // infinite loop
        pb.add_function(f);
        let p = pb.link("main").unwrap();
        let mut m = Machine::new(&p);
        let outcome = m.run(100).unwrap();
        assert_eq!(outcome.retired, 100);
        assert!(!outcome.exited);
    }
}
