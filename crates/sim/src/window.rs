//! Sliding-instruction-window bandwidth profiler (the paper's Table 2).
//!
//! "We counted the number of memory references in the last 32 or 64
//! instructions executed (in 32 or 64-wide 'sliding instruction window')
//! every cycle. After constructing the distribution of the collected numbers
//! (per region), we draw from it ... the average number of memory accesses
//! in the window and the standard deviation of them."

use std::collections::VecDeque;

use arl_mem::Region;
use arl_stats::{Histogram, Moments};

use crate::trace::TraceEntry;

/// Per-region statistics of in-window access counts for one window size:
/// streaming moments plus the full distribution the paper constructs
/// ("after constructing the distribution of the collected numbers (per
/// region), we draw from it ... the average ... and the standard
/// deviation").
#[derive(Clone, Debug)]
pub struct WindowStats {
    /// The window size in instructions.
    pub window: usize,
    /// `[data, heap, stack]` moments of the per-cycle in-window counts.
    pub per_region: [Moments; 3],
    /// `[data, heap, stack]` exact count distributions.
    pub distributions: [Histogram; 3],
}

impl WindowStats {
    /// Mean in-window accesses for `region`.
    ///
    /// # Panics
    ///
    /// Panics on [`Region::Text`], which has no data-access statistics.
    pub fn mean(&self, region: Region) -> f64 {
        self.per_region[Self::index(region)].mean()
    }

    /// Standard deviation of in-window accesses for `region`.
    ///
    /// # Panics
    ///
    /// Panics on [`Region::Text`], which has no data-access statistics.
    pub fn stddev(&self, region: Region) -> f64 {
        self.per_region[Self::index(region)].population_stddev()
    }

    /// The paper's "strictly bursty" predicate for `region`: mean < stddev.
    ///
    /// # Panics
    ///
    /// Panics on [`Region::Text`], which has no data-access statistics.
    pub fn is_strictly_bursty(&self, region: Region) -> bool {
        self.per_region[Self::index(region)].is_strictly_bursty()
    }

    /// The exact distribution of in-window counts for `region`.
    ///
    /// # Panics
    ///
    /// Panics on [`Region::Text`], which has no data-access statistics.
    pub fn distribution(&self, region: Region) -> &Histogram {
        &self.distributions[Self::index(region)]
    }

    /// Fraction of sampled windows that contained no access to `region` —
    /// a direct read on clustering (bursty regions idle most of the time).
    pub fn idle_fraction(&self, region: Region) -> f64 {
        let h = self.distribution(region);
        if h.total() == 0 {
            0.0
        } else {
            h.count(0) as f64 / h.total() as f64
        }
    }

    /// Statistics slot for a data-access region; `None` for
    /// [`Region::Text`], which can only appear in malformed entries.
    fn data_index(region: Region) -> Option<usize> {
        match region {
            Region::Data => Some(0),
            Region::Heap => Some(1),
            Region::Stack => Some(2),
            Region::Text => None,
        }
    }

    /// Accessor-side index: callers name a region explicitly, so Text here
    /// is API misuse, not malformed input.
    fn index(region: Region) -> usize {
        Self::data_index(region).unwrap_or_else(|| panic!("{region:?} is not a data access region"))
    }
}

/// Streams a trace and maintains, per window size, the per-region counts of
/// memory references among the last `W` instructions, sampling the counts
/// after every instruction once the window has filled.
#[derive(Clone, Debug)]
pub struct SlidingWindowProfiler {
    windows: Vec<WindowState>,
}

#[derive(Clone, Debug)]
struct WindowState {
    size: usize,
    /// Region marker per in-window instruction (`None` = not a memory ref).
    ring: VecDeque<Option<Region>>,
    counts: [u64; 3],
    moments: [Moments; 3],
    histograms: [Histogram; 3],
}

impl WindowState {
    fn new(size: usize) -> WindowState {
        WindowState {
            size,
            ring: VecDeque::with_capacity(size),
            counts: [0; 3],
            moments: [Moments::new(); 3],
            histograms: [Histogram::new(), Histogram::new(), Histogram::new()],
        }
    }

    fn push(&mut self, marker: Option<Region>) {
        if self.ring.len() == self.size {
            if let Some(Some(old)) = self.ring.pop_front() {
                if let Some(i) = WindowStats::data_index(old) {
                    self.counts[i] -= 1;
                }
            }
        }
        if let Some(i) = marker.and_then(WindowStats::data_index) {
            self.counts[i] += 1;
        }
        self.ring.push_back(marker);
        if self.ring.len() == self.size {
            for i in 0..3 {
                self.moments[i].push(self.counts[i] as f64);
                self.histograms[i].record(self.counts[i] as usize);
            }
        }
    }
}

impl SlidingWindowProfiler {
    /// Creates a profiler sampling the paper's 32- and 64-instruction
    /// windows.
    pub fn new() -> SlidingWindowProfiler {
        SlidingWindowProfiler::with_windows(&[32, 64])
    }

    /// Creates a profiler with custom window sizes.
    ///
    /// # Panics
    ///
    /// Panics if `sizes` is empty or contains zero.
    pub fn with_windows(sizes: &[usize]) -> SlidingWindowProfiler {
        assert!(!sizes.is_empty(), "need at least one window size");
        assert!(
            sizes.iter().all(|&s| s > 0),
            "window sizes must be positive"
        );
        SlidingWindowProfiler {
            windows: sizes.iter().map(|&s| WindowState::new(s)).collect(),
        }
    }

    /// Feeds one trace entry. A malformed entry whose data access
    /// classifies as [`Region::Text`] is counted as a non-memory
    /// instruction rather than aborting the run — trace replay already
    /// rejects such entries as `SourceError::Corrupt` at the source, so
    /// this profiler never needs to panic on them.
    pub fn observe(&mut self, entry: &TraceEntry) {
        let marker = entry.mem.map(|m| m.region);
        for w in &mut self.windows {
            w.push(marker);
        }
    }

    /// Finished statistics, one per configured window size.
    pub fn stats(&self) -> Vec<WindowStats> {
        self.windows
            .iter()
            .map(|w| WindowStats {
                window: w.size,
                per_region: w.moments,
                distributions: w.histograms.clone(),
            })
            .collect()
    }
}

impl Default for SlidingWindowProfiler {
    fn default() -> SlidingWindowProfiler {
        SlidingWindowProfiler::new()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::trace::MemAccess;
    use arl_isa::{Inst, Width};

    fn entry(region: Option<Region>) -> TraceEntry {
        TraceEntry {
            pc: 8,
            inst: Inst::Nop,
            mem: region.map(|r| MemAccess {
                addr: 0,
                width: Width::Double,
                is_load: true,
                region: r,
            }),
            taken: false,
            next_pc: 16,
            gpr_write: None,
            ghr: 0,
            ra: 0,
            model: crate::trace::ModelHints::NONE,
        }
    }

    #[test]
    fn constant_density_has_zero_stddev() {
        // Pattern: every 4th instruction is a data access; window 4 always
        // holds exactly 1 of them.
        let mut p = SlidingWindowProfiler::with_windows(&[4]);
        for i in 0..400 {
            let r = if i % 4 == 0 { Some(Region::Data) } else { None };
            p.observe(&entry(r));
        }
        let s = &p.stats()[0];
        assert_eq!(s.window, 4);
        assert!((s.mean(Region::Data) - 1.0).abs() < 1e-12);
        assert!(s.stddev(Region::Data) < 1e-12);
        assert!(!s.is_strictly_bursty(Region::Data));
        assert_eq!(s.mean(Region::Heap), 0.0);
    }

    #[test]
    fn clustered_accesses_are_bursty() {
        // 8 heap accesses in a row then 92 non-mem, repeated: window 8 sees
        // mostly 0 or 8 — stddev exceeds mean.
        let mut p = SlidingWindowProfiler::with_windows(&[8]);
        for _ in 0..20 {
            for _ in 0..8 {
                p.observe(&entry(Some(Region::Heap)));
            }
            for _ in 0..92 {
                p.observe(&entry(None));
            }
        }
        let s = &p.stats()[0];
        assert!(s.is_strictly_bursty(Region::Heap));
    }

    #[test]
    fn window_only_samples_when_full() {
        let mut p = SlidingWindowProfiler::with_windows(&[32]);
        for _ in 0..31 {
            p.observe(&entry(Some(Region::Stack)));
        }
        assert_eq!(p.stats()[0].per_region[2].count(), 0);
        p.observe(&entry(Some(Region::Stack)));
        assert_eq!(p.stats()[0].per_region[2].count(), 1);
        assert_eq!(p.stats()[0].mean(Region::Stack), 32.0);
    }

    #[test]
    fn distribution_matches_moments() {
        let mut p = SlidingWindowProfiler::with_windows(&[4]);
        // Bursts of 4 heap refs then 12 quiet → windows hold 0..=4.
        for _ in 0..25 {
            for _ in 0..4 {
                p.observe(&entry(Some(Region::Heap)));
            }
            for _ in 0..12 {
                p.observe(&entry(None));
            }
        }
        let s = &p.stats()[0];
        let h = s.distribution(Region::Heap);
        assert_eq!(h.total(), s.per_region[1].count());
        assert!((h.mean() - s.mean(Region::Heap)).abs() < 1e-12);
        // Idle fraction: 9 of every 16 full windows contain no heap ref.
        assert!(
            s.idle_fraction(Region::Heap) > 0.5,
            "{}",
            s.idle_fraction(Region::Heap)
        );
        assert!(h.count(4) > 0, "full-burst windows observed");
    }

    #[test]
    fn default_profiles_32_and_64() {
        let p = SlidingWindowProfiler::new();
        let stats = p.stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].window, 32);
        assert_eq!(stats[1].window, 64);
    }

    #[test]
    #[should_panic(expected = "window sizes must be positive")]
    fn zero_window_rejected() {
        let _ = SlidingWindowProfiler::with_windows(&[0]);
    }

    #[test]
    fn malformed_text_access_does_not_abort_profiling() {
        // A data access classifying as Text is malformed input (the
        // replayer rejects it as Corrupt); if one reaches the profiler it
        // must degrade to "no access", not panic mid-sweep.
        let mut p = SlidingWindowProfiler::with_windows(&[2]);
        p.observe(&entry(Some(Region::Text)));
        p.observe(&entry(Some(Region::Data)));
        p.observe(&entry(Some(Region::Text)));
        let s = &p.stats()[0];
        assert_eq!(s.per_region[0].count(), 2, "two full windows sampled");
        assert!((s.mean(Region::Data) - 1.0).abs() < 1e-12);
        assert_eq!(s.mean(Region::Heap), 0.0);
    }
}
