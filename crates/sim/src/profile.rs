//! Region profilers: Figure 2 (static breakdown) and Table 1
//! (workload characterization).

use std::collections::HashMap;

use arl_mem::{Region, RegionSet};

use crate::trace::TraceEntry;

/// Per-class static/dynamic totals for one workload — the data behind the
/// paper's Figure 2.
#[derive(Clone, Debug, Default)]
pub struct RegionBreakdown {
    /// Static instruction count per class, indexed like
    /// [`RegionSet::CLASS_LABELS`] (`D, H, S, D/H, D/S, H/S, D/H/S`).
    pub static_counts: [u64; 7],
    /// Dynamic reference count per class (same indexing).
    pub dynamic_counts: [u64; 7],
}

impl RegionBreakdown {
    /// Total static memory instructions observed.
    pub fn static_total(&self) -> u64 {
        self.static_counts.iter().sum()
    }

    /// Total dynamic memory references observed.
    pub fn dynamic_total(&self) -> u64 {
        self.dynamic_counts.iter().sum()
    }

    /// Fraction of *static* instructions that access more than one region
    /// (the paper reports 1.8% / 1.9% averages).
    pub fn static_multi_region_fraction(&self) -> f64 {
        let multi: u64 = self.static_counts[3..].iter().sum();
        let total = self.static_total();
        if total == 0 {
            0.0
        } else {
            multi as f64 / total as f64
        }
    }

    /// Fraction of *dynamic* references issued by multi-region instructions
    /// (the paper reports 0%–9.6%).
    pub fn dynamic_multi_region_fraction(&self) -> f64 {
        let multi: u64 = self.dynamic_counts[3..].iter().sum();
        let total = self.dynamic_total();
        if total == 0 {
            0.0
        } else {
            multi as f64 / total as f64
        }
    }

    /// Static fraction for one class label (`"S"`, `"D/H"`, ...).
    ///
    /// # Panics
    ///
    /// Panics if `label` is not one of [`RegionSet::CLASS_LABELS`].
    pub fn static_fraction(&self, label: &str) -> f64 {
        let Some(idx) = RegionSet::CLASS_LABELS.iter().position(|&l| l == label) else {
            panic!("unknown class label {label:?}");
        };
        let total = self.static_total();
        if total == 0 {
            0.0
        } else {
            self.static_counts[idx] as f64 / total as f64
        }
    }
}

/// Observes a trace and accumulates, per static memory instruction (pc),
/// the set of regions it touches and its dynamic reference count; then
/// collapses them into a [`RegionBreakdown`].
#[derive(Clone, Debug, Default)]
pub struct RegionProfiler {
    per_pc: HashMap<u64, (RegionSet, u64)>,
}

impl RegionProfiler {
    /// Creates an empty profiler.
    pub fn new() -> RegionProfiler {
        RegionProfiler::default()
    }

    /// Feeds one trace entry.
    pub fn observe(&mut self, entry: &TraceEntry) {
        if let Some(mem) = entry.mem {
            let slot = self.per_pc.entry(entry.pc).or_default();
            slot.0.insert(mem.region);
            slot.1 += 1;
        }
    }

    /// Number of distinct static memory instructions seen.
    pub fn static_instructions(&self) -> usize {
        self.per_pc.len()
    }

    /// The region set a given static instruction has touched so far.
    pub fn regions_of(&self, pc: u64) -> Option<RegionSet> {
        self.per_pc.get(&pc).map(|&(set, _)| set)
    }

    /// Iterates `(pc, region-set, dynamic-count)` for every static memory
    /// instruction — the per-instruction ground truth the compiler-hint
    /// evaluation uses as its profile input.
    pub fn iter(&self) -> impl Iterator<Item = (u64, RegionSet, u64)> + '_ {
        self.per_pc.iter().map(|(&pc, &(set, n))| (pc, set, n))
    }

    /// Collapses the per-pc data into Figure 2's class breakdown.
    ///
    /// A dynamic reference is attributed to the class its instruction ends
    /// the run in (matching the paper's post-hoc classification).
    pub fn breakdown(&self) -> RegionBreakdown {
        let mut b = RegionBreakdown::default();
        for &(set, dyn_count) in self.per_pc.values() {
            if let Some(idx) = set.class_index() {
                b.static_counts[idx] += 1;
                b.dynamic_counts[idx] += dyn_count;
            }
        }
        b
    }
}

/// Table 1's per-workload characterization columns.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkloadCharacter {
    /// Total dynamic instructions retired.
    pub instructions: u64,
    /// Dynamic loads.
    pub loads: u64,
    /// Dynamic stores.
    pub stores: u64,
    /// Dynamic references per region `[data, heap, stack]`.
    pub per_region: [u64; 3],
}

impl WorkloadCharacter {
    /// Feeds one trace entry.
    pub fn observe(&mut self, entry: &TraceEntry) {
        self.instructions += 1;
        if let Some(mem) = entry.mem {
            if mem.is_load {
                self.loads += 1;
            } else {
                self.stores += 1;
            }
            let idx = match mem.region {
                Region::Data => 0,
                Region::Heap => 1,
                Region::Stack => 2,
                Region::Text => return,
            };
            self.per_region[idx] += 1;
        }
    }

    /// Percentage of instructions that are loads.
    pub fn load_pct(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            100.0 * self.loads as f64 / self.instructions as f64
        }
    }

    /// Percentage of instructions that are stores.
    pub fn store_pct(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            100.0 * self.stores as f64 / self.instructions as f64
        }
    }

    /// Total dynamic memory references.
    pub fn references(&self) -> u64 {
        self.loads + self.stores
    }
}

/// One-shot characterization of a trace stream (Table 1 columns).
pub fn characterize<'a, I: IntoIterator<Item = &'a TraceEntry>>(entries: I) -> WorkloadCharacter {
    let mut c = WorkloadCharacter::default();
    for e in entries {
        c.observe(e);
    }
    c
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::trace::MemAccess;
    use arl_isa::{Gpr, Inst, Width};

    fn entry(pc: u64, region: Option<Region>, is_load: bool) -> TraceEntry {
        TraceEntry {
            pc,
            inst: if region.is_some() {
                Inst::Load {
                    width: Width::Double,
                    signed: true,
                    rd: Gpr::T0,
                    base: Gpr::T1,
                    offset: 0,
                }
            } else {
                Inst::Nop
            },
            mem: region.map(|r| MemAccess {
                addr: 0x1000_0000,
                width: Width::Double,
                is_load,
                region: r,
            }),
            taken: false,
            next_pc: pc + 8,
            gpr_write: None,
            ghr: 0,
            ra: 0,
            model: crate::trace::ModelHints::NONE,
        }
    }

    #[test]
    fn breakdown_classifies_single_and_multi_region() {
        let mut p = RegionProfiler::new();
        // pc 8: always stack (3 refs). pc 16: data then heap (2 refs).
        p.observe(&entry(8, Some(Region::Stack), true));
        p.observe(&entry(8, Some(Region::Stack), true));
        p.observe(&entry(8, Some(Region::Stack), false));
        p.observe(&entry(16, Some(Region::Data), true));
        p.observe(&entry(16, Some(Region::Heap), true));
        p.observe(&entry(24, None, false)); // non-mem, ignored
        let b = p.breakdown();
        assert_eq!(p.static_instructions(), 2);
        assert_eq!(b.static_counts[2], 1); // "S"
        assert_eq!(b.static_counts[3], 1); // "D/H"
        assert_eq!(b.dynamic_counts[2], 3);
        assert_eq!(b.dynamic_counts[3], 2);
        assert!((b.static_multi_region_fraction() - 0.5).abs() < 1e-12);
        assert!((b.dynamic_multi_region_fraction() - 0.4).abs() < 1e-12);
        assert!((b.static_fraction("S") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn characterize_counts_mix() {
        let entries = vec![
            entry(8, Some(Region::Data), true),
            entry(16, Some(Region::Stack), false),
            entry(24, None, false),
            entry(32, Some(Region::Heap), true),
        ];
        let c = characterize(&entries);
        assert_eq!(c.instructions, 4);
        assert_eq!(c.loads, 2);
        assert_eq!(c.stores, 1);
        assert_eq!(c.per_region, [1, 1, 1]);
        assert!((c.load_pct() - 50.0).abs() < 1e-12);
        assert!((c.store_pct() - 25.0).abs() < 1e-12);
        assert_eq!(c.references(), 3);
    }

    #[test]
    fn regions_of_reports_accumulated_set() {
        let mut p = RegionProfiler::new();
        p.observe(&entry(8, Some(Region::Data), true));
        p.observe(&entry(8, Some(Region::Stack), true));
        let set = p.regions_of(8).unwrap();
        assert_eq!(set.label(), "D/S");
        assert_eq!(p.regions_of(999), None);
    }
}
