//! Machine-readable snapshot of a functional run.

use arl_mem::PAGE_SIZE;

/// Counters a harness needs from a finished (or in-flight) functional
/// simulation, as one copyable snapshot instead of ad-hoc prints.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Instructions retired so far.
    pub instructions: u64,
    /// Pages resident in the sparse memory image. Pages are never
    /// released, so this is a peak-RSS proxy for the simulated program.
    pub resident_pages: usize,
    /// `resident_pages` in bytes.
    pub peak_rss_bytes: u64,
    /// Values the program printed.
    pub output_values: usize,
    /// Whether the program has executed its `Exit` syscall.
    pub exited: bool,
}

impl Metrics {
    pub(crate) fn capture(
        instructions: u64,
        resident_pages: usize,
        output_values: usize,
        exited: bool,
    ) -> Metrics {
        Metrics {
            instructions,
            resident_pages,
            peak_rss_bytes: resident_pages as u64 * PAGE_SIZE,
            output_values,
            exited,
        }
    }
}
