//! Dynamic trace records.

use arl_isa::{Gpr, Inst, Width};
use arl_mem::Region;

/// One dynamic memory access.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MemAccess {
    /// Effective address.
    pub addr: u64,
    /// Access width.
    pub width: Width,
    /// Load (`true`) or store (`false`).
    pub is_load: bool,
    /// The region the address falls in.
    pub region: Region,
}

impl MemAccess {
    /// Whether the access targets the stack region.
    pub fn is_stack(&self) -> bool {
        self.region == Region::Stack
    }
}

/// One retired instruction, as produced by [`Machine`](crate::Machine).
///
/// Carries everything downstream consumers need:
///
/// * profilers use `pc` + `mem`;
/// * the access-region predictors additionally use the run-time context
///   (`ghr`, `ra`) sampled *before* the instruction executes — exactly what
///   the fetch-stage ARPT lookup would see;
/// * the timing simulator uses the register identities from `inst`, the
///   produced `value` (for value-prediction verification), and `taken`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TraceEntry {
    /// The instruction's address.
    pub pc: u64,
    /// The decoded instruction.
    pub inst: Inst,
    /// The memory access performed, if any.
    pub mem: Option<MemAccess>,
    /// For conditional branches: whether the branch was taken.
    pub taken: bool,
    /// The pc of the next retired instruction.
    pub next_pc: u64,
    /// Value written to the destination GPR, if the instruction writes one
    /// (used by the stride value predictor).
    pub gpr_write: Option<(Gpr, i64)>,
    /// Global (conditional-)branch history register sampled before this
    /// instruction; newest outcome in bit 0.
    pub ghr: u64,
    /// Link-register (`$ra`) value sampled before this instruction — the
    /// paper's caller identification (CID) context.
    pub ra: u64,
}

impl TraceEntry {
    /// Whether this entry is a memory reference.
    pub fn is_mem(&self) -> bool {
        self.mem.is_some()
    }

    /// Whether this entry is a load.
    pub fn is_load(&self) -> bool {
        self.mem.map(|m| m.is_load).unwrap_or(false)
    }

    /// Whether this entry is a store.
    pub fn is_store(&self) -> bool {
        self.mem.map(|m| !m.is_load).unwrap_or(false)
    }
}
