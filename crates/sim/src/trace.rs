//! Dynamic trace records and the [`TraceSource`] abstraction.

use std::error::Error;
use std::fmt;

use arl_isa::{Gpr, Inst, Width};
use arl_mem::Region;

use crate::exec::ExecError;
use crate::metrics::Metrics;

/// One dynamic memory access.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MemAccess {
    /// Effective address.
    pub addr: u64,
    /// Access width.
    pub width: Width,
    /// Load (`true`) or store (`false`).
    pub is_load: bool,
    /// The region the address falls in.
    pub region: Region,
}

impl MemAccess {
    /// Whether the access targets the stack region.
    pub fn is_stack(&self) -> bool {
        self.region == Region::Stack
    }
}

/// Precomputed timing-model facts riding along with a [`TraceEntry`] when
/// it was decoded from a *compiled* (v3) trace.
///
/// Everything here is a pure function of the entry — steering class, FU
/// class and latency, renamer source operands, ARPT key — evaluated once at
/// capture time so the timing cores' dispatch stages can skip the
/// per-replay recomputation. `present == false` (the [`ModelHints::NONE`]
/// value carried by live execution and v1/v2 traces) means "compute live";
/// a consumer seeing `present == true` may trust the fields but must behave
/// bit-identically to the live computation.
///
/// The encodings are deliberately plain (`u8` tags, unified register-file
/// indices) so this crate needs no dependency on the model crates; the
/// producers and consumers share the actual enums via `arl-core`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ModelHints {
    /// Whether the hint fields are populated.
    pub present: bool,
    /// Dispatch-stage steering class: 0 = not a memory instruction,
    /// 1 = statically revealed stack, 2 = statically revealed non-stack,
    /// 3 = dynamic (consult the ARPT with `arpt_key`).
    pub steer: u8,
    /// Functional-unit class tag (`arl_core::FuClass` discriminant).
    pub fu: u8,
    /// Execution latency in cycles.
    pub latency: u8,
    /// Issue source operands as unified register-file indices (0–31 GPR,
    /// 32–63 FPR), `0xFF` = unused slot.
    pub srcs: [u8; 3],
    /// Store-data operand (unified index), `0xFF` = none.
    pub data_src: u8,
    /// Floating-point destination (unified index `32 + fd`), `0xFF` = none.
    pub fpr_dest: u8,
    /// Precomputed `Arpt::key(pc, ghr, ra)` under the capture context;
    /// only meaningful when `steer == 3`, zero otherwise.
    pub arpt_key: u64,
}

impl ModelHints {
    /// Steering tag: not a memory instruction.
    pub const STEER_NONE: u8 = 0;
    /// Steering tag: statically revealed stack access.
    pub const STEER_STACK: u8 = 1;
    /// Steering tag: statically revealed non-stack access.
    pub const STEER_NONSTACK: u8 = 2;
    /// Steering tag: dynamic — consult the ARPT with `arpt_key`.
    pub const STEER_DYNAMIC: u8 = 3;

    /// The absent-hints value carried by live execution and v1/v2 traces.
    pub const NONE: ModelHints = ModelHints {
        present: false,
        steer: 0,
        fu: 0,
        latency: 0,
        srcs: [u8::MAX; 3],
        data_src: u8::MAX,
        fpr_dest: u8::MAX,
        arpt_key: 0,
    };
}

impl Default for ModelHints {
    fn default() -> ModelHints {
        ModelHints::NONE
    }
}

/// One retired instruction, as produced by [`Machine`](crate::Machine).
///
/// Carries everything downstream consumers need:
///
/// * profilers use `pc` + `mem`;
/// * the access-region predictors additionally use the run-time context
///   (`ghr`, `ra`) sampled *before* the instruction executes — exactly what
///   the fetch-stage ARPT lookup would see;
/// * the timing simulator uses the register identities from `inst`, the
///   produced `value` (for value-prediction verification), and `taken`.
///
/// Equality deliberately ignores [`TraceEntry::model`]: hints are an
/// acceleration channel, not an observable fact about the retired
/// instruction, so a compiled replay compares equal to live execution.
#[derive(Clone, Copy, Debug)]
pub struct TraceEntry {
    /// The instruction's address.
    pub pc: u64,
    /// The decoded instruction.
    pub inst: Inst,
    /// The memory access performed, if any.
    pub mem: Option<MemAccess>,
    /// For conditional branches: whether the branch was taken.
    pub taken: bool,
    /// The pc of the next retired instruction.
    pub next_pc: u64,
    /// Value written to the destination GPR, if the instruction writes one
    /// (used by the stride value predictor).
    pub gpr_write: Option<(Gpr, i64)>,
    /// Global (conditional-)branch history register sampled before this
    /// instruction; newest outcome in bit 0.
    pub ghr: u64,
    /// Link-register (`$ra`) value sampled before this instruction — the
    /// paper's caller identification (CID) context.
    pub ra: u64,
    /// Precomputed model facts from a compiled trace
    /// ([`ModelHints::NONE`] otherwise); excluded from equality.
    pub model: ModelHints,
}

impl PartialEq for TraceEntry {
    fn eq(&self, other: &TraceEntry) -> bool {
        self.pc == other.pc
            && self.inst == other.inst
            && self.mem == other.mem
            && self.taken == other.taken
            && self.next_pc == other.next_pc
            && self.gpr_write == other.gpr_write
            && self.ghr == other.ghr
            && self.ra == other.ra
    }
}

impl TraceEntry {
    /// Whether this entry is a memory reference.
    pub fn is_mem(&self) -> bool {
        self.mem.is_some()
    }

    /// Whether this entry is a load.
    pub fn is_load(&self) -> bool {
        self.mem.map(|m| m.is_load).unwrap_or(false)
    }

    /// Whether this entry is a store.
    pub fn is_store(&self) -> bool {
        self.mem.map(|m| !m.is_load).unwrap_or(false)
    }
}

/// Errors raised while pulling entries from a [`TraceSource`].
#[derive(Debug)]
pub enum SourceError {
    /// Live functional execution failed.
    Exec(ExecError),
    /// A captured trace could not be decoded back into entries.
    Corrupt(String),
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::Exec(e) => write!(f, "functional execution failed: {e}"),
            SourceError::Corrupt(msg) => write!(f, "corrupt trace: {msg}"),
        }
    }
}

impl Error for SourceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SourceError::Exec(e) => Some(e),
            SourceError::Corrupt(_) => None,
        }
    }
}

impl From<ExecError> for SourceError {
    fn from(e: ExecError) -> SourceError {
        SourceError::Exec(e)
    }
}

/// A stream of retired-instruction [`TraceEntry`] records.
///
/// The execute-once/replay-many pipeline hinges on this trait: the live
/// functional executor ([`Machine`](crate::Machine)) and a trace replayer
/// (`arl-trace`'s `Replayer`) both implement it, so the predictor
/// evaluation in `arl-core` and the cycle-level pipeline in `arl-timing`
/// are agnostic to whether entries come from real execution or from a
/// captured trace.
pub trait TraceSource {
    /// Produces the next retired instruction, or `None` once the stream is
    /// exhausted (repeated calls after exhaustion keep returning `None`).
    ///
    /// # Errors
    ///
    /// [`SourceError::Exec`] when live execution fails,
    /// [`SourceError::Corrupt`] when a captured trace cannot be decoded.
    fn next_entry(&mut self) -> Result<Option<TraceEntry>, SourceError>;

    /// End-of-run functional counters (instructions, peak-RSS proxy,
    /// output count). Only meaningful once the stream is exhausted.
    fn metrics(&self) -> Metrics;
}

/// A [`TraceSource`] over a pre-collected entry slice (tests and
/// micro-harnesses; carries no functional metrics beyond the entry count).
pub struct EntrySliceSource<'a> {
    entries: std::slice::Iter<'a, TraceEntry>,
    delivered: u64,
}

impl<'a> EntrySliceSource<'a> {
    /// Wraps a slice of entries.
    pub fn new(entries: &'a [TraceEntry]) -> EntrySliceSource<'a> {
        EntrySliceSource {
            entries: entries.iter(),
            delivered: 0,
        }
    }
}

impl TraceSource for EntrySliceSource<'_> {
    fn next_entry(&mut self) -> Result<Option<TraceEntry>, SourceError> {
        let next = self.entries.next().copied();
        self.delivered += next.is_some() as u64;
        Ok(next)
    }

    fn metrics(&self) -> Metrics {
        Metrics {
            instructions: self.delivered,
            ..Metrics::default()
        }
    }
}
