//! Cross-crate integration: every workload runs end to end through the
//! functional simulator with all Section 3 profilers attached, and the
//! collected statistics are internally consistent.

use arl::mem::Region;
use arl::sim::{Machine, RegionProfiler, SlidingWindowProfiler, WorkloadCharacter};
use arl::workloads::{suite, Scale};

const CAP: u64 = 100_000_000;

#[test]
fn all_workloads_run_to_completion_and_are_deterministic() {
    for spec in suite() {
        let program = spec.build(Scale::tiny());
        let mut a = Machine::new(&program);
        let oa = a.run(CAP).expect("first run");
        assert!(oa.exited, "{} must exit", spec.name);
        let mut b = Machine::new(&program);
        let ob = b.run(CAP).expect("second run");
        assert_eq!(oa.retired, ob.retired, "{} determinism", spec.name);
        assert_eq!(a.output(), b.output(), "{} output determinism", spec.name);
        assert!(
            oa.retired > 10_000,
            "{} must do real work: {}",
            spec.name,
            oa.retired
        );
    }
}

#[test]
fn profiler_totals_are_consistent() {
    for spec in suite() {
        let program = spec.build(Scale::tiny());
        let mut m = Machine::new(&program);
        let mut regions = RegionProfiler::new();
        let mut character = WorkloadCharacter::default();
        m.run_with(CAP, |e| {
            regions.observe(e);
            character.observe(e);
        })
        .expect("runs");
        let b = regions.breakdown();
        // Dynamic refs attributed to classes must equal the load+store count.
        assert_eq!(
            b.dynamic_total(),
            character.references(),
            "{}: class totals must cover every reference",
            spec.name
        );
        // Per-region window means times instruction count roughly recover
        // the per-region totals (window mean = refs/instr × window size).
        assert_eq!(
            character.per_region.iter().sum::<u64>(),
            character.references(),
            "{}: regions partition the references",
            spec.name
        );
        assert!(b.static_total() > 0);
    }
}

#[test]
fn access_region_locality_holds_for_every_workload() {
    // The paper's headline observation (Figure 2): the overwhelming
    // majority of static memory instructions are single-region, and the
    // stack-only class is the largest on average (>50% in the paper).
    let (mut stack_share_sum, mut n) = (0.0, 0);
    for spec in suite() {
        let program = spec.build(Scale::tiny());
        let mut m = Machine::new(&program);
        let mut regions = RegionProfiler::new();
        m.run_with(CAP, |e| regions.observe(e)).expect("runs");
        let b = regions.breakdown();
        assert!(
            b.static_multi_region_fraction() < 0.10,
            "{}: single-region locality must dominate ({:.2}% multi)",
            spec.name,
            100.0 * b.static_multi_region_fraction()
        );
        // Spills/locals exist everywhere, even in leaf-heavy code.
        assert!(
            b.static_fraction("S") > 0.03,
            "{}: stack class present",
            spec.name
        );
        stack_share_sum += b.static_fraction("S");
        n += 1;
    }
    assert!(
        stack_share_sum / n as f64 > 0.4,
        "stack-only is the dominant static class on average: {}",
        stack_share_sum / n as f64
    );
}

#[test]
fn fp_workloads_have_negligible_heap_traffic() {
    for spec in suite().into_iter().filter(|s| s.is_fp) {
        let program = spec.build(Scale::tiny());
        let mut m = Machine::new(&program);
        let mut windows = SlidingWindowProfiler::new();
        m.run_with(CAP, |e| windows.observe(e)).expect("runs");
        let w32 = &windows.stats()[0];
        assert!(
            w32.mean(Region::Heap) < 0.25,
            "{}: FP programs barely touch the heap ({:.2})",
            spec.name,
            w32.mean(Region::Heap)
        );
    }
}

#[test]
fn window_doubling_doubles_the_means() {
    // Table 2's W64 means are ≈ 2 × W32 means (density is scale-free).
    let spec = arl::workloads::workload("su2cor").unwrap();
    let program = spec.build(Scale::tiny());
    let mut m = Machine::new(&program);
    let mut windows = SlidingWindowProfiler::new();
    m.run_with(CAP, |e| windows.observe(e)).expect("runs");
    let stats = windows.stats();
    for r in Region::DATA_REGIONS {
        let (m32, m64) = (stats[0].mean(r), stats[1].mean(r));
        if m32 > 0.5 {
            let ratio = m64 / m32;
            assert!(
                (1.9..2.1).contains(&ratio),
                "window-64 mean should double window-32: {r} {ratio}"
            );
        }
    }
}

#[test]
fn object_images_execute_identically() {
    // Build → save → reload → run: the reloaded binary must behave
    // byte-for-byte like the original (the paper's "existing binaries"
    // story).
    for name in ["li", "compress"] {
        let spec = arl::workloads::workload(name).unwrap();
        let original = spec.build(Scale::tiny());
        let bytes = original.to_object_bytes();
        let reloaded = arl::asm::Program::from_object_bytes(&bytes).expect("valid image");
        let mut a = Machine::new(&original);
        let mut b = Machine::new(&reloaded);
        let oa = a.run(CAP).unwrap();
        let ob = b.run(CAP).unwrap();
        assert!(oa.exited && ob.exited);
        assert_eq!(oa.retired, ob.retired, "{name}: same instruction count");
        assert_eq!(a.output(), b.output(), "{name}: same output");
    }
}
