//! Cross-crate integration: every workload runs end to end through the
//! functional simulator with all Section 3 profilers attached, and the
//! collected statistics are internally consistent.

use arl::mem::Region;
use arl::sim::{Machine, RegionProfiler, SlidingWindowProfiler, WorkloadCharacter};
use arl::workloads::{suite, Scale};

const CAP: u64 = 100_000_000;

#[test]
fn all_workloads_run_to_completion_and_are_deterministic() {
    for spec in suite() {
        let program = spec.build(Scale::tiny());
        let mut a = Machine::new(&program);
        let oa = a.run(CAP).expect("first run");
        assert!(oa.exited, "{} must exit", spec.name);
        let mut b = Machine::new(&program);
        let ob = b.run(CAP).expect("second run");
        assert_eq!(oa.retired, ob.retired, "{} determinism", spec.name);
        assert_eq!(a.output(), b.output(), "{} output determinism", spec.name);
        assert!(
            oa.retired > 10_000,
            "{} must do real work: {}",
            spec.name,
            oa.retired
        );
    }
}

#[test]
fn profiler_totals_are_consistent() {
    for spec in suite() {
        let program = spec.build(Scale::tiny());
        let mut m = Machine::new(&program);
        let mut regions = RegionProfiler::new();
        let mut character = WorkloadCharacter::default();
        m.run_with(CAP, |e| {
            regions.observe(e);
            character.observe(e);
        })
        .expect("runs");
        let b = regions.breakdown();
        // Dynamic refs attributed to classes must equal the load+store count.
        assert_eq!(
            b.dynamic_total(),
            character.references(),
            "{}: class totals must cover every reference",
            spec.name
        );
        // Per-region window means times instruction count roughly recover
        // the per-region totals (window mean = refs/instr × window size).
        assert_eq!(
            character.per_region.iter().sum::<u64>(),
            character.references(),
            "{}: regions partition the references",
            spec.name
        );
        assert!(b.static_total() > 0);
    }
}

#[test]
fn access_region_locality_holds_for_every_workload() {
    // The paper's headline observation (Figure 2): the overwhelming
    // majority of static memory instructions are single-region, and the
    // stack-only class is the largest on average (>50% in the paper).
    let (mut stack_share_sum, mut n) = (0.0, 0);
    for spec in suite() {
        let program = spec.build(Scale::tiny());
        let mut m = Machine::new(&program);
        let mut regions = RegionProfiler::new();
        m.run_with(CAP, |e| regions.observe(e)).expect("runs");
        let b = regions.breakdown();
        assert!(
            b.static_multi_region_fraction() < 0.10,
            "{}: single-region locality must dominate ({:.2}% multi)",
            spec.name,
            100.0 * b.static_multi_region_fraction()
        );
        // Spills/locals exist everywhere, even in leaf-heavy code.
        assert!(
            b.static_fraction("S") > 0.03,
            "{}: stack class present",
            spec.name
        );
        stack_share_sum += b.static_fraction("S");
        n += 1;
    }
    assert!(
        stack_share_sum / n as f64 > 0.4,
        "stack-only is the dominant static class on average: {}",
        stack_share_sum / n as f64
    );
}

#[test]
fn fp_workloads_have_negligible_heap_traffic() {
    for spec in suite().into_iter().filter(|s| s.is_fp) {
        let program = spec.build(Scale::tiny());
        let mut m = Machine::new(&program);
        let mut windows = SlidingWindowProfiler::new();
        m.run_with(CAP, |e| windows.observe(e)).expect("runs");
        let w32 = &windows.stats()[0];
        assert!(
            w32.mean(Region::Heap) < 0.25,
            "{}: FP programs barely touch the heap ({:.2})",
            spec.name,
            w32.mean(Region::Heap)
        );
    }
}

#[test]
fn window_doubling_doubles_the_means() {
    // Table 2's W64 means are ≈ 2 × W32 means (density is scale-free).
    let spec = arl::workloads::workload("su2cor").unwrap();
    let program = spec.build(Scale::tiny());
    let mut m = Machine::new(&program);
    let mut windows = SlidingWindowProfiler::new();
    m.run_with(CAP, |e| windows.observe(e)).expect("runs");
    let stats = windows.stats();
    for r in Region::DATA_REGIONS {
        let (m32, m64) = (stats[0].mean(r), stats[1].mean(r));
        if m32 > 0.5 {
            let ratio = m64 / m32;
            assert!(
                (1.9..2.1).contains(&ratio),
                "window-64 mean should double window-32: {r} {ratio}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Golden shape-regression tests: the paper's headline curves, pinned at
// tiny scale through the shared bench pipeline (2-worker pool, so the
// parallel path is exercised too). These check *shapes* — orderings and
// floors that must survive any simulator change — not exact values.
// ---------------------------------------------------------------------------

#[test]
fn golden_figure2_shape_single_region_above_90_percent() {
    // Figure 2: in every workload, >90% of static memory instructions
    // touch exactly one region class over the whole run.
    let reports = arl_bench::profile_suite_with(&arl_bench::Pool::new(2), Scale::tiny());
    assert_eq!(reports.len(), suite().len());
    for report in &reports {
        let single = 1.0 - report.breakdown.static_multi_region_fraction();
        assert!(
            single > 0.90,
            "{}: single-region share {:.2}% must stay above 90%",
            report.spec.name,
            100.0 * single
        );
    }
}

#[test]
fn golden_figure4_shape_hybrid_accuracy_floors() {
    // Figure 4: the 1BIT-HYBRID scheme's accuracy floors. The paper
    // reports 99.89% (int) / 100.0% (FP) at full scale; tiny-scale runs
    // amplify cold misses, so the pinned floors are: >99.8% FP average,
    // >99% suite average, >96% for every individual workload.
    use arl::core::{Capacity, Context, EvalConfig, PredictorKind};
    let config = EvalConfig {
        kind: PredictorKind::OneBit,
        context: Context::HYBRID_8_24,
        capacity: Capacity::Unlimited,
        hints: None,
    };
    let accs = arl_bench::Pool::new(2).map(suite(), |_i, spec| {
        let acc = arl_bench::evaluate(spec, Scale::tiny(), config.clone())
            .stats
            .accuracy();
        (spec, acc)
    });
    let mut sums = [0.0f64; 2];
    let mut counts = [0u32; 2];
    for (spec, acc) in &accs {
        assert!(
            *acc > 0.96,
            "{}: HYBRID accuracy {:.2}% under the 96% floor",
            spec.name,
            100.0 * acc
        );
        sums[spec.is_fp as usize] += acc;
        counts[spec.is_fp as usize] += 1;
    }
    let fp_avg = sums[1] / counts[1] as f64;
    let suite_avg = (sums[0] + sums[1]) / (counts[0] + counts[1]) as f64;
    assert!(
        fp_avg > 0.998,
        "FP-average HYBRID accuracy {:.3}% under the 99.8% floor",
        100.0 * fp_avg
    );
    assert!(
        suite_avg > 0.99,
        "suite-average HYBRID accuracy {:.3}% under the 99% floor",
        100.0 * suite_avg
    );
}

#[test]
fn golden_figure8_shape_config_ordering() {
    // Figure 8: the decoupled (3+3) design and the ideal 16-ported cache
    // both beat the (2+0) baseline on every workload, and (3+3) reaches
    // the (16+0) performance level (the paper's headline result). At tiny
    // scale (3+3) can even edge past (16+0) — 1-cycle LVC hits beat cache
    // ports — so the pinned ordering is baseline < both, with (3+3)
    // within 5% of (16+0) on the suite-average speedup.
    use arl::timing::{MachineConfig, TimingSim};
    let configs = [
        MachineConfig::baseline_2_0(),
        MachineConfig::decoupled(3, 3),
        MachineConfig::conventional(16, 2),
    ];
    let specs = suite();
    let cells: Vec<_> = specs
        .iter()
        .flat_map(|spec| configs.iter().map(move |c| (*spec, c.clone())))
        .collect();
    let stats = arl_bench::Pool::new(2).map(cells, |_i, (spec, config)| {
        let program = spec.build(Scale::tiny());
        (spec, TimingSim::run_program(&program, &config))
    });
    let (mut sum_decoupled, mut sum_ideal) = (0.0f64, 0.0f64);
    for chunk in stats.chunks(configs.len()) {
        let (spec, base) = &chunk[0];
        let decoupled = &chunk[1].1;
        let ideal = &chunk[2].1;
        assert!(
            decoupled.cycles < base.cycles,
            "{}: (3+3) must beat (2+0): {} vs {}",
            spec.name,
            decoupled.cycles,
            base.cycles
        );
        assert!(
            ideal.cycles < base.cycles,
            "{}: (16+0) must beat (2+0): {} vs {}",
            spec.name,
            ideal.cycles,
            base.cycles
        );
        sum_decoupled += base.cycles as f64 / decoupled.cycles as f64;
        sum_ideal += base.cycles as f64 / ideal.cycles as f64;
    }
    let n = suite().len() as f64;
    let (avg_decoupled, avg_ideal) = (sum_decoupled / n, sum_ideal / n);
    assert!(
        avg_decoupled >= 0.95 * avg_ideal,
        "(3+3) average speedup {avg_decoupled:.3} must reach the (16+0) level {avg_ideal:.3}"
    );
}

#[test]
fn object_images_execute_identically() {
    // Build → save → reload → run: the reloaded binary must behave
    // byte-for-byte like the original (the paper's "existing binaries"
    // story).
    for name in ["li", "compress"] {
        let spec = arl::workloads::workload(name).unwrap();
        let original = spec.build(Scale::tiny());
        let bytes = original.to_object_bytes();
        let reloaded = arl::asm::Program::from_object_bytes(&bytes).expect("valid image");
        let mut a = Machine::new(&original);
        let mut b = Machine::new(&reloaded);
        let oa = a.run(CAP).unwrap();
        let ob = b.run(CAP).unwrap();
        assert!(oa.exited && ob.exited);
        assert_eq!(oa.retired, ob.retired, "{name}: same instruction count");
        assert_eq!(a.output(), b.output(), "{name}: same output");
    }
}

#[test]
fn table2_shape_heap_is_burstier_than_data_and_stack() {
    // Table 2's qualitative claim: heap accesses arrive in bursts, while
    // data-segment accesses are spread smoothly across windows. Pin the
    // shape (not the exact numbers) at window size 32: across workloads
    // that touch the heap at all, the heap's coefficient of variation
    // dominates the data segment's, heap refs are strictly bursty
    // (stddev > mean) almost everywhere, and most windows see no heap
    // activity at all.
    let mut heap_active = 0u32;
    let mut heap_bursty = 0u32;
    let mut data_bursty = 0u32;
    let mut sum_cov = [0.0f64; 3];
    let mut sum_idle = [0.0f64; 3];
    for spec in suite() {
        let program = spec.build(Scale::tiny());
        let mut m = Machine::new(&program);
        let mut windows = SlidingWindowProfiler::new();
        m.run_with(CAP, |e| windows.observe(e)).expect("runs");
        let w32 = &windows.stats()[0];
        let cov = |r: Region| {
            let mean = w32.mean(r);
            if mean > 0.0 {
                w32.stddev(r) / mean
            } else {
                0.0
            }
        };
        if w32.mean(Region::Heap) > 0.0 {
            heap_active += 1;
            heap_bursty += w32.is_strictly_bursty(Region::Heap) as u32;
            for (i, r) in Region::DATA_REGIONS.iter().enumerate() {
                sum_cov[i] += cov(*r);
                sum_idle[i] += w32.idle_fraction(*r);
            }
        }
        data_bursty += w32.is_strictly_bursty(Region::Data) as u32;
    }
    // 8 of the 12 synthetic workloads exercise the heap.
    assert!(
        heap_active >= 6,
        "suite lost its heap-active workloads ({heap_active})"
    );
    assert!(
        heap_bursty * 4 >= heap_active * 3,
        "heap must be strictly bursty on >=3/4 of heap-active workloads \
         ({heap_bursty}/{heap_active})"
    );
    assert!(
        data_bursty <= 2,
        "data-segment accesses must stay smooth (bursty on {data_bursty} workloads)"
    );
    // DATA_REGIONS order is [Data, Heap, Stack].
    let n = heap_active as f64;
    assert!(
        sum_cov[1] / n > sum_cov[0] / n && sum_cov[1] / n > sum_cov[2] / n,
        "average heap CoV {:.3} must dominate data {:.3} and stack {:.3}",
        sum_cov[1] / n,
        sum_cov[0] / n,
        sum_cov[2] / n
    );
    assert!(
        sum_idle[1] / n > 0.5 && sum_idle[1] / n > sum_idle[0] / n,
        "heap refs must cluster: idle-window fraction {:.3} (data {:.3})",
        sum_idle[1] / n,
        sum_idle[0] / n
    );
}
