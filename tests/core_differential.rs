//! Differential suite: the event-driven core vs the legacy cycle-ticking
//! core (`ARL_CORE=legacy`) must be **bit-identical** — same `SimStats`,
//! same rendered probe JSON — on every workload × Figure 8 configuration,
//! with and without injected memory-port faults.
//!
//! The event core never executes the cycles it skips; these tests are the
//! proof that skipping is unobservable. Configs are compared by setting
//! `MachineConfig::core` directly (not via the `ARL_CORE` env var) so the
//! two runs can live in one process without env races.

use arl::sim::{Machine, TraceEntry, TraceSource};
use arl::timing::{
    CoreMode, FaultKind, MachineConfig, Recorder, Route, StallCause, TimingFault, TimingSim,
};
use arl::workloads::{workload, Scale};
use arl_faults::{plan_arpt_fault, plan_port_fault};

/// Functional entry stream for one workload at the test scale.
fn entries_for(name: &str) -> Vec<TraceEntry> {
    let spec = workload(name).unwrap_or_else(|| panic!("unknown workload {name}"));
    let program = spec.build(Scale::tiny());
    let mut machine = Machine::new(&program);
    let mut entries = Vec::new();
    while let Some(entry) = machine
        .next_entry()
        .unwrap_or_else(|e| panic!("{name}: functional execution failed: {e}"))
    {
        entries.push(entry);
    }
    entries
}

/// Runs `entries` through both cores on `config` and asserts bit-identical
/// observable output. Returns the (identical) stats for extra checks.
fn assert_cores_agree(
    entries: &[TraceEntry],
    config: &MachineConfig,
    label: &str,
) -> arl::timing::SimStats {
    let mut event_cfg = config.clone();
    event_cfg.core = CoreMode::Event;
    let mut legacy_cfg = config.clone();
    legacy_cfg.core = CoreMode::Legacy;
    let (event_stats, event_rec) =
        TimingSim::run_trace_probed(entries, &event_cfg, Recorder::new());
    let (legacy_stats, legacy_rec) =
        TimingSim::run_trace_probed(entries, &legacy_cfg, Recorder::new());
    assert_eq!(event_stats, legacy_stats, "{label}: SimStats diverge");
    assert_eq!(
        event_rec.to_json().render(),
        legacy_rec.to_json().render(),
        "{label}: probe JSON diverges"
    );
    // The replayed spans must keep the attribution identity exact.
    let attributed: u64 = StallCause::ALL
        .iter()
        .map(|&c| event_rec.stall_cycles(c))
        .sum();
    assert_eq!(
        event_rec.useful_cycles() + attributed,
        event_stats.cycles,
        "{label}: useful + attributed must cover every cycle"
    );
    assert_eq!(
        event_rec.cycles(),
        event_stats.cycles,
        "{label}: probe saw every cycle"
    );
    event_stats
}

/// The full Figure 8 sweep for one workload.
fn differential_figure8(name: &str) {
    let entries = entries_for(name);
    for config in MachineConfig::figure8_suite() {
        assert_cores_agree(&entries, &config, &format!("{name} on {}", config.name));
    }
}

macro_rules! figure8_differential {
    ($($test:ident => $workload:literal),* $(,)?) => {
        $(
            #[test]
            fn $test() {
                differential_figure8($workload);
            }
        )*
    };
}

/// The backend axis: every composable memory backend must be
/// core-invariant too, on both the conventional and the decoupled
/// machine, and device backends must surface their device stats.
#[test]
fn backends_bit_identical_across_cores() {
    use arl::timing::BackendConfig;
    for name in ["go", "tomcatv"] {
        let entries = entries_for(name);
        for backend in BackendConfig::ALL {
            for base in [
                MachineConfig::baseline_2_0(),
                MachineConfig::decoupled(3, 3),
            ] {
                let config = base.with_backend(backend);
                let label = format!("{name} on {}", config.name);
                let stats = assert_cores_agree(&entries, &config, &label);
                let expects_device = matches!(
                    backend,
                    BackendConfig::StackedCache
                        | BackendConfig::StackedMemCache
                        | BackendConfig::Burst
                );
                assert_eq!(
                    stats.stacked.is_some(),
                    expects_device,
                    "{label}: backend device stats presence is wrong"
                );
            }
        }
    }
}

figure8_differential! {
    figure8_bit_identical_go => "go",
    figure8_bit_identical_m88ksim => "m88ksim",
    figure8_bit_identical_gcc => "gcc",
    figure8_bit_identical_compress => "compress",
    figure8_bit_identical_li => "li",
    figure8_bit_identical_ijpeg => "ijpeg",
    figure8_bit_identical_perl => "perl",
    figure8_bit_identical_vortex => "vortex",
    figure8_bit_identical_tomcatv => "tomcatv",
    figure8_bit_identical_swim => "swim",
    figure8_bit_identical_su2cor => "su2cor",
    figure8_bit_identical_mgrid => "mgrid",
}

/// Port-fault plans exactly as the `ARL_FAULT` campaign materializes them
/// (seeded planner), plus a hand-placed early blackout guaranteed to fall
/// inside even the shortest run.
fn port_fault_plan(has_lvc: bool) -> Vec<TimingFault> {
    let mut faults = vec![TimingFault {
        id: 100,
        kind: FaultKind::PortBlackout {
            route: Route::DataCache,
            start_cycle: 10,
            cycles: 60,
        },
    }];
    for index in 0..4u32 {
        faults.push(plan_port_fault(index, 42, index, 4_000, has_lvc));
    }
    faults
}

#[test]
fn port_blackouts_stay_bit_identical() {
    for name in ["compress", "vortex"] {
        let entries = entries_for(name);
        for base in [
            MachineConfig::baseline_2_0(),
            MachineConfig::decoupled(2, 2),
        ] {
            let mut config = base;
            config.faults = port_fault_plan(config.is_decoupled());
            let stats = assert_cores_agree(
                &entries,
                &config,
                &format!("{name}+ports on {}", config.name),
            );
            assert!(
                stats.faults_applied.contains(&100),
                "{name} on {}: the early blackout must actually fire",
                config.name
            );
        }
    }
}

#[test]
fn arpt_soft_errors_stay_bit_identical() {
    // ARPT soft errors trigger on lookup *counts*, so the event core must
    // hold off skipping while one is pending — and stay bit-identical
    // before, during, and after the injection.
    let entries = entries_for("li");
    let mut config = MachineConfig::decoupled(3, 3);
    config.faults = vec![plan_arpt_fault(7, 42, 0, 200)];
    let stats = assert_cores_agree(&entries, &config, "li+arpt on (3+3)");
    assert_eq!(
        stats.faults_applied,
        vec![7],
        "the planned soft error must fire within the run"
    );
}

#[test]
fn squash_recovery_stays_bit_identical() {
    // Squash-mode recovery reschedules every younger instruction; its
    // reissue horizon is an event-wheel edge case worth pinning.
    let entries = entries_for("perl");
    let mut config = MachineConfig::decoupled(2, 3);
    config.recovery = arl::timing::RecoveryMode::Squash;
    config.region_mispredict_penalty = 4;
    assert_cores_agree(&entries, &config, "perl squash on (2+3)");
}

#[test]
fn bounded_mshrs_and_write_buffer_stay_bit_identical() {
    // Bounded MSHRs make port/MSHR denial windows (and their release
    // events) load-bearing; a write buffer adds background store drain.
    let entries = entries_for("tomcatv");
    for base in [
        MachineConfig::baseline_2_0(),
        MachineConfig::decoupled(3, 3),
    ] {
        let mut config = base;
        config.mshrs = 2;
        config.write_buffer = 4;
        assert_cores_agree(
            &entries,
            &config,
            &format!("tomcatv mshr2+wb4 on {}", config.name),
        );
    }
}
