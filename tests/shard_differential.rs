//! Snapshot-sharded replay differential suite: stitching shard segments
//! back together must be **bit-identical** to one unsharded serial replay
//! — same entry stream, same `SimStats`, same `PredictionStats`, same
//! probed stall breakdown, same rendered table bytes — for every suite
//! workload, shard counts 2/3/7, and both timing cores.
//!
//! The shard runner chains segments through serialized machine-state
//! blobs (`crates/timing/src/state.rs`); these tests are the proof that
//! the mid-cycle cut and resume is unobservable.

use arl::core::{Capacity, Context, EvalConfig, Evaluator, PredictorKind};
use arl::sim::{TraceEntry, TraceSource};
use arl::stats::TableBuilder;
use arl::timing::{CoreMode, MachineConfig, SimStats};
use arl::trace::{Replayer, Trace};
use arl::workloads::{workload, Scale};
use arl_bench::{
    capture_trace_snapshotted, evaluate_trace, replay_sharded, shard_plan, stats_fingerprint,
    timing_trace_probed,
};

/// Snapshot cadence for the differential traces. Every suite workload
/// retires at least ~71k instructions at `Scale::tiny()`, so this yields
/// at least 7 interior snapshots — enough segments for a 7-way plan.
const INTERVAL: u64 = 10_000;

const SHARD_COUNTS: [usize; 3] = [2, 3, 7];

/// Builds the workload and captures its snapshotted trace once.
fn snapshotted(name: &str) -> (arl::asm::Program, Trace) {
    let spec = workload(name).unwrap_or_else(|| panic!("unknown workload {name}"));
    let program = spec.build(Scale::tiny());
    let trace = capture_trace_snapshotted(&program, name, INTERVAL);
    assert!(
        trace.snapshot_count() >= 2,
        "{name}: need at least 2 snapshots to shard meaningfully, got {}",
        trace.snapshot_count()
    );
    (program, trace)
}

/// Drains a replayer into a vector.
fn drain(mut replayer: Replayer<'_>, name: &str) -> Vec<TraceEntry> {
    let mut entries = Vec::new();
    while let Some(entry) = replayer
        .next_entry()
        .unwrap_or_else(|e| panic!("{name}: replay failed: {e}"))
    {
        entries.push(entry);
    }
    entries
}

/// The stitched functional entry stream — shard spans replayed back to
/// back — must equal the single serial replay, for every shard count.
fn assert_entries_stitch(name: &str, program: &arl::asm::Program, trace: &Trace) {
    let serial = drain(
        Replayer::new(trace, program).unwrap_or_else(|e| panic!("{name}: {e}")),
        name,
    );
    assert_eq!(serial.len() as u64, trace.event_count());
    let boundaries = trace.snapshot_count() + 1;
    for shards in SHARD_COUNTS {
        let mut stitched = Vec::with_capacity(serial.len());
        for (start, end) in shard_plan(boundaries, shards) {
            let span = Replayer::open_span(trace, program, start, end)
                .unwrap_or_else(|e| panic!("{name}: span [{start},{end}) rejected: {e}"));
            stitched.extend(drain(span, name));
        }
        assert_eq!(
            stitched, serial,
            "{name}: {shards}-shard stitched entry stream diverged"
        );
    }
}

/// Sharded timing replay — machine state exported at each cut and
/// re-imported by the next shard — must reproduce the serial run's
/// `SimStats` and probed stall breakdown exactly, on both cores.
fn assert_timing_stitches(name: &str, program: &arl::asm::Program, trace: &Trace) {
    for core in [CoreMode::Event, CoreMode::Legacy] {
        let mut config = MachineConfig::decoupled(3, 3);
        config.core = core;
        let (serial_stats, serial_rec) = timing_trace_probed(program, trace, name, &config);
        let serial_probe = serial_rec.to_json().render();
        for shards in SHARD_COUNTS {
            let run = replay_sharded(program, trace, name, &config, shards, true);
            assert_eq!(
                run.plan.len(),
                shards.min((trace.snapshot_count() + 1) as usize),
                "{name} {core:?}: unexpected shard plan size"
            );
            assert_eq!(
                run.stats, serial_stats,
                "{name} {core:?}: {shards}-shard SimStats diverged from serial"
            );
            assert_eq!(
                run.recorder
                    .expect("probed run returns a recorder")
                    .to_json()
                    .render(),
                serial_probe,
                "{name} {core:?}: {shards}-shard probe JSON diverged from serial"
            );
        }
    }
}

/// The predictor evaluator is a pure fold over the entry stream, so one
/// evaluator consuming shard spans in order must land on the same
/// `PredictionStats` as consuming the serial replay.
fn assert_prediction_stitches(name: &str, program: &arl::asm::Program, trace: &Trace) {
    let config = EvalConfig {
        kind: PredictorKind::OneBit,
        context: Context::Gbh { bits: 8 },
        capacity: Capacity::Entries(1 << 12),
        hints: None,
    };
    let serial = evaluate_trace(program, trace, name, config.clone()).stats;
    let boundaries = trace.snapshot_count() + 1;
    for shards in SHARD_COUNTS {
        let mut evaluator = Evaluator::new(config.clone());
        for (start, end) in shard_plan(boundaries, shards) {
            let mut span = Replayer::open_span(trace, program, start, end)
                .unwrap_or_else(|e| panic!("{name}: span [{start},{end}) rejected: {e}"));
            evaluator
                .consume(&mut span)
                .unwrap_or_else(|e| panic!("{name}: segmented evaluation failed: {e}"));
        }
        assert_eq!(
            *evaluator.stats(),
            serial,
            "{name}: {shards}-shard PredictionStats diverged from serial"
        );
    }
}

fn differential(name: &str) {
    let (program, trace) = snapshotted(name);
    assert_entries_stitch(name, &program, &trace);
    assert_timing_stitches(name, &program, &trace);
    assert_prediction_stitches(name, &program, &trace);
}

macro_rules! shard_differential {
    ($($test:ident => $workload:literal),* $(,)?) => {
        $(
            #[test]
            fn $test() {
                differential($workload);
            }
        )*
    };
}

shard_differential! {
    stitched_equals_serial_go => "go",
    stitched_equals_serial_m88ksim => "m88ksim",
    stitched_equals_serial_gcc => "gcc",
    stitched_equals_serial_compress => "compress",
    stitched_equals_serial_li => "li",
    stitched_equals_serial_ijpeg => "ijpeg",
    stitched_equals_serial_perl => "perl",
    stitched_equals_serial_vortex => "vortex",
    stitched_equals_serial_tomcatv => "tomcatv",
    stitched_equals_serial_swim => "swim",
    stitched_equals_serial_su2cor => "su2cor",
    stitched_equals_serial_mgrid => "mgrid",
}

/// The backend axis: the state blob carries per-backend device state
/// (stacked-cache tags, open burst rows), so the mid-cycle cut-and-resume
/// must stay unobservable under every backend, on both cores.
#[test]
fn stitched_equals_serial_per_backend() {
    use arl::timing::BackendConfig;
    let name = "compress";
    let (program, trace) = snapshotted(name);
    for backend in BackendConfig::ALL {
        for core in [CoreMode::Event, CoreMode::Legacy] {
            let mut config = MachineConfig::decoupled(3, 3).with_backend(backend);
            config.core = core;
            let label = format!("{name} on {} ({core:?})", config.name);
            let (serial_stats, serial_rec) = timing_trace_probed(&program, &trace, name, &config);
            let run = replay_sharded(&program, &trace, name, &config, 3, true);
            assert_eq!(
                run.stats, serial_stats,
                "{label}: sharded SimStats diverged from serial"
            );
            assert_eq!(
                run.recorder
                    .expect("probed run returns a recorder")
                    .to_json()
                    .render(),
                serial_rec.to_json().render(),
                "{label}: sharded probe JSON diverged from serial"
            );
        }
    }
}

/// The reporting layer sees no difference either: a results table built
/// from sharded stats renders byte-for-byte the same as one built from
/// serial stats.
#[test]
fn rendered_tables_match_byte_for_byte() {
    let row = |stats: &SimStats, name: &str| -> [String; 3] {
        [
            name.to_string(),
            stats.cycles.to_string(),
            format!("{:016x}", stats_fingerprint(stats)),
        ]
    };
    let mut serial_table = TableBuilder::new(&["Benchmark", "Cycles", "Fingerprint"]);
    let mut sharded_table = TableBuilder::new(&["Benchmark", "Cycles", "Fingerprint"]);
    for name in ["perl", "compress", "li"] {
        let (program, trace) = snapshotted(name);
        let config = MachineConfig::decoupled(3, 3);
        let (serial_stats, _) = timing_trace_probed(&program, &trace, name, &config);
        let sharded = replay_sharded(&program, &trace, name, &config, 3, false);
        serial_table.row(&row(&serial_stats, name));
        sharded_table.row(&row(&sharded.stats, name));
    }
    assert_eq!(
        serial_table.render(),
        sharded_table.render(),
        "sharded results must render to identical table bytes"
    );
}
