//! Golden `.arltrace` fixtures: the capture pipeline must reproduce a
//! checked-in trace byte-for-byte.
//!
//! Two fixtures are pinned, both the smallest suite workload (perl at
//! `Scale::tiny()`, 71,251 dynamic instructions):
//!
//! * `perl_tiny.arltrace` — the current (v2) container, captured with a
//!   snapshot every [`SNAPSHOT_INTERVAL`] instructions. Any drift in the
//!   functional simulator, the delta/varint codec, the snapshot records,
//!   or the container layout shows up here as a byte diff — and the
//!   pinned FNV-1a checksum additionally locks the on-disk artifact
//!   itself against silent edits.
//! * `perl_tiny_v1.arltrace` — the pre-snapshot (v1) container, frozen
//!   forever: decoders must keep accepting traces written before the
//!   snapshot trailer existed. This file is never regenerated.
//!
//! Regenerate the v2 fixture after an *intentional* format or simulator
//! change with:
//!
//! ```text
//! cargo test --test suite_trace_fixture -- --ignored regenerate
//! ```

use arl::sim::TraceSource;
use arl::trace::{capture_snapshotted, Replayer, Trace, VERSION, VERSION_V1};
use arl::workloads::{workload, Scale};

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/perl_tiny.arltrace"
);

/// The frozen pre-snapshot container (format v1); never regenerated.
const FIXTURE_V1: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/perl_tiny_v1.arltrace"
);

/// Snapshot cadence baked into the v2 fixture: 71,251 events at 10,000
/// yields 7 interior snapshot records.
const SNAPSHOT_INTERVAL: u64 = 10_000;

/// FNV-1a64 of the full fixture minus its own trailing checksum — the
/// value `Trace::checksum` reports. Pinned so simulator or codec drift
/// cannot hide behind a regenerated file.
const PINNED_CHECKSUM: u64 = 0xa723_f6e5_3962_f00e;

/// The v1 fixture's checksum (the value pinned before snapshots existed).
const PINNED_CHECKSUM_V1: u64 = 0xd910_1e41_7c47_8118;

const PINNED_EVENTS: u64 = 71_251;

fn capture_fixture_workload() -> Trace {
    let spec = workload("perl").expect("perl workload");
    let program = spec.build(Scale::tiny());
    capture_snapshotted(&program, 200_000_000, SNAPSHOT_INTERVAL).expect("capture")
}

#[test]
fn golden_trace_fixture_reproduces_byte_for_byte() {
    let golden = std::fs::read(FIXTURE).expect("read fixture (regenerate with --ignored)");
    let captured = capture_fixture_workload();
    assert_eq!(
        captured.as_bytes().len(),
        golden.len(),
        "captured trace length diverged from the golden fixture"
    );
    assert_eq!(
        captured.as_bytes(),
        &golden[..],
        "captured trace bytes diverged from the golden fixture"
    );
    assert_eq!(captured.checksum(), PINNED_CHECKSUM, "checksum drifted");
    assert_eq!(captured.event_count(), PINNED_EVENTS);
}

#[test]
fn golden_trace_fixture_validates_and_replays() {
    let golden = std::fs::read(FIXTURE).expect("read fixture (regenerate with --ignored)");
    let trace = Trace::from_bytes(golden).expect("fixture must validate");
    assert_eq!(trace.version(), VERSION);
    assert_eq!(trace.checksum(), PINNED_CHECKSUM);
    assert_eq!(trace.event_count(), PINNED_EVENTS);
    assert_eq!(
        trace.snapshot_count(),
        PINNED_EVENTS / SNAPSHOT_INTERVAL,
        "fixture carries one snapshot per full interval"
    );
    assert!(trace.metrics().exited);

    let spec = workload("perl").expect("perl workload");
    let program = spec.build(Scale::tiny());
    let mut replayer = Replayer::new(&trace, &program).expect("replayer");
    let mut entries = 0u64;
    while let Some(entry) = replayer.next_entry().expect("replay") {
        assert_ne!(entry.pc, 0, "replayed entries carry real pcs");
        entries += 1;
    }
    assert_eq!(entries, PINNED_EVENTS);
    assert_eq!(replayer.metrics(), trace.metrics());
}

/// Backward compatibility: a v1 container (no snapshot trailer) written
/// before the sharding work must keep decoding and replaying unchanged.
/// The event payload is identical to the v2 fixture's, so the replayed
/// streams must match entry for entry.
#[test]
fn v1_fixture_still_decodes_and_replays() {
    let old = std::fs::read(FIXTURE_V1).expect("read frozen v1 fixture");
    let trace = Trace::from_bytes(old).expect("v1 fixture must keep validating");
    assert_eq!(trace.version(), VERSION_V1);
    assert_eq!(trace.checksum(), PINNED_CHECKSUM_V1);
    assert_eq!(trace.event_count(), PINNED_EVENTS);
    assert_eq!(trace.snapshot_count(), 0, "v1 traces carry no snapshots");
    assert!(trace.metrics().exited);

    let spec = workload("perl").expect("perl workload");
    let program = spec.build(Scale::tiny());

    let v2 = std::fs::read(FIXTURE).expect("read fixture");
    let v2 = Trace::from_bytes(v2).expect("fixture must validate");
    let mut old_replay = Replayer::new(&trace, &program).expect("v1 replayer");
    let mut new_replay = Replayer::new(&v2, &program).expect("v2 replayer");
    loop {
        let a = old_replay.next_entry().expect("v1 replay");
        let b = new_replay.next_entry().expect("v2 replay");
        assert_eq!(a, b, "v1 and v2 fixtures must replay identically");
        if a.is_none() {
            break;
        }
    }
    assert_eq!(old_replay.metrics(), trace.metrics());
}

/// Not a test: rewrites the golden fixture from the current simulator.
/// Run explicitly after an intentional format change, then update the
/// pinned checksum above from the panic message of the byte-for-byte
/// test. The v1 fixture is frozen and must never be rewritten.
#[test]
#[ignore = "fixture regeneration helper"]
fn regenerate_golden_trace_fixture() {
    let captured = capture_fixture_workload();
    captured
        .write_to(std::path::Path::new(FIXTURE))
        .expect("write fixture");
    eprintln!(
        "wrote {FIXTURE}: {} bytes, {} events, {} snapshots, checksum {:#018x}",
        captured.as_bytes().len(),
        captured.event_count(),
        captured.snapshot_count(),
        captured.checksum()
    );
}
