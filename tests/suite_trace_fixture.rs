//! Golden `.arltrace` fixture: the capture pipeline must reproduce a
//! checked-in trace byte-for-byte.
//!
//! The fixture is the smallest suite workload (perl at `Scale::tiny()`,
//! 71,251 dynamic instructions). Any drift in the functional simulator,
//! the delta/varint codec, or the container layout shows up here as a
//! byte diff — and the pinned FNV-1a checksum additionally locks the
//! on-disk artifact itself against silent edits.
//!
//! Regenerate after an *intentional* format or simulator change with:
//!
//! ```text
//! cargo test --test suite_trace_fixture -- --ignored regenerate
//! ```

use arl::sim::TraceSource;
use arl::trace::{capture, Replayer, Trace};
use arl::workloads::{workload, Scale};

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/perl_tiny.arltrace"
);

/// FNV-1a64 of the full fixture minus its own trailing checksum — the
/// value `Trace::checksum` reports. Pinned so simulator or codec drift
/// cannot hide behind a regenerated file.
const PINNED_CHECKSUM: u64 = 0xd910_1e41_7c47_8118;

const PINNED_EVENTS: u64 = 71_251;

fn capture_fixture_workload() -> Trace {
    let spec = workload("perl").expect("perl workload");
    let program = spec.build(Scale::tiny());
    capture(&program, 200_000_000).expect("capture")
}

#[test]
fn golden_trace_fixture_reproduces_byte_for_byte() {
    let golden = std::fs::read(FIXTURE).expect("read fixture (regenerate with --ignored)");
    let captured = capture_fixture_workload();
    assert_eq!(
        captured.as_bytes().len(),
        golden.len(),
        "captured trace length diverged from the golden fixture"
    );
    assert_eq!(
        captured.as_bytes(),
        &golden[..],
        "captured trace bytes diverged from the golden fixture"
    );
    assert_eq!(captured.checksum(), PINNED_CHECKSUM, "checksum drifted");
    assert_eq!(captured.event_count(), PINNED_EVENTS);
}

#[test]
fn golden_trace_fixture_validates_and_replays() {
    let golden = std::fs::read(FIXTURE).expect("read fixture (regenerate with --ignored)");
    let trace = Trace::from_bytes(golden).expect("fixture must validate");
    assert_eq!(trace.checksum(), PINNED_CHECKSUM);
    assert_eq!(trace.event_count(), PINNED_EVENTS);
    assert!(trace.metrics().exited);

    let spec = workload("perl").expect("perl workload");
    let program = spec.build(Scale::tiny());
    let mut replayer = Replayer::new(&trace, &program).expect("replayer");
    let mut entries = 0u64;
    while let Some(entry) = replayer.next_entry().expect("replay") {
        assert_ne!(entry.pc, 0, "replayed entries carry real pcs");
        entries += 1;
    }
    assert_eq!(entries, PINNED_EVENTS);
    assert_eq!(replayer.metrics(), trace.metrics());
}

/// Not a test: rewrites the golden fixture from the current simulator.
/// Run explicitly after an intentional format change, then update the
/// pinned checksum above from the panic message of the byte-for-byte
/// test.
#[test]
#[ignore = "fixture regeneration helper"]
fn regenerate_golden_trace_fixture() {
    let captured = capture_fixture_workload();
    std::fs::write(FIXTURE, captured.as_bytes()).expect("write fixture");
    eprintln!(
        "wrote {FIXTURE}: {} bytes, {} events, checksum {:#018x}",
        captured.as_bytes().len(),
        captured.event_count(),
        captured.checksum()
    );
}
