//! Checkpoint-ledger robustness, mirroring `trace_robustness.rs` for the
//! v2 ledger: truncation at *every* byte offset and single-byte
//! corruption at every offset must yield either a hard error or a strict
//! prefix of the original entries — a damaged entry (or anything after
//! it) must never be merged, even when the damage leaves a
//! syntactically-valid JSON payload behind.

use arl::stats::Json;
use arl_bench::{Checkpoint, RunIdentity};

fn identity() -> RunIdentity {
    RunIdentity::new("robustness")
        .field("scale", "tiny")
        .field("plan", "all:42:1")
}

fn temp_ledger(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("arl-ledgerrob-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join("ledger.ckpt")
}

/// A real ledger with payload shapes chosen to be maximally dangerous
/// under damage: numeric payloads whose truncations are still valid
/// JSON, nested objects, and a superseding duplicate key.
fn build_ledger(path: &std::path::Path) -> Vec<(String, String)> {
    let mut ckpt = Checkpoint::open(path, &identity(), false).expect("fresh ledger");
    ckpt.record("count", &Json::from(1234567890u64)).unwrap();
    ckpt.record(
        "go/tiny",
        &Json::obj([
            ("cycles", Json::from(987654321u64)),
            ("label", Json::from("go")),
        ]),
    )
    .unwrap();
    ckpt.record("count", &Json::from(42u64)).unwrap(); // supersedes
    ckpt.record("perl/tiny", &Json::obj([("cycles", Json::from(111u64))]))
        .unwrap();
    drop(ckpt);
    Checkpoint::inspect(path).expect("ledger parses").entries
}

/// Asserts `entries` is a strict or full prefix of `original`, entry for
/// entry — the no-merge invariant: damage may cost us a tail, never hand
/// us an altered or reordered record.
fn assert_prefix(entries: &[(String, String)], original: &[(String, String)], what: &str) {
    assert!(
        entries.len() <= original.len(),
        "{what}: damage must never add entries"
    );
    for (i, (entry, golden)) in entries.iter().zip(original).enumerate() {
        assert_eq!(entry, golden, "{what}: surviving entry {i} was altered");
    }
}

/// Truncation at every byte offset: `inspect` either errors (header
/// damage) or returns a strict prefix; `open` additionally restarts
/// fresh over a torn header and physically truncates torn entry tails,
/// after which the ledger is clean and resumable.
#[test]
fn truncation_at_every_offset_keeps_a_strict_prefix() {
    let path = temp_ledger("trunc");
    let original = build_ledger(&path);
    assert_eq!(original.len(), 4);
    let bytes = std::fs::read(&path).expect("read ledger");
    let header_end = bytes.iter().position(|&b| b == b'\n').expect("header");

    for len in 0..bytes.len() {
        let what = format!("ledger truncated to {len} bytes");
        std::fs::write(&path, &bytes[..len]).expect("write truncation");

        match Checkpoint::inspect(&path) {
            Ok(view) => {
                assert!(len > header_end, "{what}: a torn header must not parse");
                assert_prefix(&view.entries, &original, &what);
                assert!(
                    view.entries.len() < original.len() || !view.torn_tail,
                    "{what}: full entries with a torn tail is impossible"
                );
                // Truncating into an entry (past its first byte) must
                // drop it even when the cut payload is still valid JSON
                // — the checksum, not the payload parser, is the judge.
                if len < bytes.len() - 1 {
                    assert!(
                        view.entries.len() < original.len(),
                        "{what}: a truncated entry survived"
                    );
                }
            }
            Err(_) => {
                assert!(
                    len <= header_end,
                    "{what}: only header damage may hard-error"
                );
            }
        }

        // `open` repairs: torn headers restart, torn tails truncate.
        let reopened = Checkpoint::open(&path, &identity(), false).expect("open repairs damage");
        let live: Vec<&str> = ["count", "go/tiny", "perl/tiny"]
            .into_iter()
            .filter(|k| reopened.get(k).is_some())
            .collect();
        assert!(live.len() <= 3);
        drop(reopened);
        let healed = Checkpoint::inspect(&path).expect("healed ledger parses");
        assert!(!healed.torn_tail, "{what}: open must truncate the tail");
        assert_prefix(&healed.entries, &original, &format!("{what} (healed)"));
    }

    std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
}

/// Single-byte corruption at every offset (three masks everywhere, every
/// mask across the final entry): a flip in the header is a hard error or
/// an identity refusal; a flip in the body costs at most the tail from
/// the damaged entry onward — the flipped entry itself never survives.
#[test]
fn single_byte_flips_never_merge_the_damaged_entry() {
    let path = temp_ledger("flip");
    let original = build_ledger(&path);
    let bytes = std::fs::read(&path).expect("read ledger");
    let header_end = bytes.iter().position(|&b| b == b'\n').expect("header");
    let last_entry = bytes[..bytes.len() - 1]
        .iter()
        .rposition(|&b| b == b'\n')
        .expect("entries")
        + 1;

    let check = |at: usize, mask: u8| {
        let mut corrupt = bytes.clone();
        corrupt[at] ^= mask;
        let what = format!("byte {at} xor {mask:#04x}");
        std::fs::write(&path, &corrupt).expect("write corruption");

        // Which entry line does the damage land in? Everything from that
        // entry on must be gone (a flipped newline can also merge the
        // *preceding* line into the damage, costing one entry more).
        let damaged_entry = at.checked_sub(header_end + 1).map_or(0, |_| {
            bytes[header_end + 1..at]
                .iter()
                .filter(|&&b| b == b'\n')
                .count()
        });
        match Checkpoint::inspect(&path) {
            Ok(view) => {
                assert!(at > header_end, "{what}: header flips must not parse");
                assert_prefix(&view.entries, &original, &what);
                assert!(
                    view.entries.len() <= damaged_entry,
                    "{what}: the damaged entry (index {damaged_entry}) survived with {} entries",
                    view.entries.len()
                );
            }
            Err(_) => assert!(at <= header_end, "{what}: only header flips may hard-error"),
        }

        match Checkpoint::open(&path, &identity(), false) {
            Ok(ckpt) => {
                assert!(at > header_end, "{what}: open accepted a flipped header");
                drop(ckpt);
                let healed = Checkpoint::inspect(&path).expect("healed ledger parses");
                assert!(!healed.torn_tail);
                assert_prefix(&healed.entries, &original, &format!("{what} (healed)"));
            }
            Err(e) => assert!(
                at <= header_end,
                "{what}: open rejected a body flip it should truncate past: {e}"
            ),
        }
    };

    for at in 0..bytes.len() {
        for mask in [0x01u8, 0x80, 0xFF] {
            check(at, mask);
        }
    }
    // Every mask across the final entry — the torn-append window a
    // SIGKILL actually produces.
    for at in last_entry..bytes.len() {
        for mask in 1u8..=255 {
            check(at, mask);
        }
    }

    std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
}

/// The regression the per-entry checksum exists for: cutting a numeric
/// payload leaves valid JSON (`1234567890` → `12345`), and a
/// payload-level `is_ok()` check would merge the wrong number. Both the
/// raw cut line and a reflowed one (newline restored) must be dropped.
#[test]
fn truncated_but_valid_json_payloads_are_never_merged() {
    let path = temp_ledger("jsoncut");
    build_ledger(&path);
    let text = std::fs::read_to_string(&path).expect("read ledger");
    let mut lines: Vec<&str> = text.lines().collect();
    let entry = lines[1]; // seq 0: count = 1234567890
    assert!(entry.contains("1234567890"));

    // Cut mid-payload and restore the newline: the payload alone parses
    // as JSON, but the line fails its checksum.
    let cut = entry.split("567890").next().unwrap();
    assert!(Json::parse("1234").is_ok(), "cut payload is valid JSON");
    let forged = format!("{}\n{cut}\n", lines[0]);
    std::fs::write(&path, forged).expect("write forgery");
    let view = Checkpoint::inspect(&path).expect("forged ledger parses");
    assert_eq!(view.entries.len(), 0, "cut-payload entry must not merge");
    assert!(view.torn_tail);

    // Same cut, but with the *checksum field* also sliced off cleanly so
    // the line keeps its 4-field shape with a stale checksum.
    let with_stale_chk = format!("{}\t{}", cut, "0000000000000000");
    lines[1] = &with_stale_chk;
    let forged = lines.join("\n") + "\n";
    std::fs::write(&path, forged).expect("write forgery");
    let view = Checkpoint::inspect(&path).expect("forged ledger parses");
    assert_eq!(
        view.entries.len(),
        0,
        "stale-checksum entry (and all after it) must not merge"
    );

    let reopened = Checkpoint::open(&path, &identity(), false).expect("open truncates");
    assert!(reopened.is_empty(), "nothing forged may be live");

    std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
}

/// Identity protection survives damage: a ledger whose *identity bytes*
/// are edited (header checksum re-sealed by an adversary with the spec)
/// is refused as a foreign ledger, naming both fingerprints.
#[test]
fn resealed_foreign_identity_is_refused_naming_both() {
    let path = temp_ledger("foreign");
    build_ledger(&path);
    let text = std::fs::read_to_string(&path).expect("read ledger");
    let (header, rest) = text.split_once('\n').expect("header");
    let parts: Vec<&str> = header.split('\t').collect();
    let foreign = RunIdentity::new("robustness")
        .field("scale", "tiny")
        .field("plan", "all:43:1"); // one seed apart
    let body = format!("{}\t{}", parts[0], foreign.render());
    let chk = format!("{:016x}", arl::trace::fnv1a64(body.as_bytes()));
    std::fs::write(&path, format!("{body}\t{chk}\n{rest}")).expect("write foreign ledger");

    let err = Checkpoint::open(&path, &identity(), false).expect_err("foreign ledger refused");
    let msg = err.to_string();
    assert!(msg.contains(&foreign.render()), "names the ledger identity");
    assert!(
        msg.contains(&identity().render()),
        "names the current identity"
    );
    assert!(
        msg.contains("ARL_CHECKPOINT_FORCE"),
        "explains the override"
    );

    // The override accepts it and the entries are intact.
    let forced = Checkpoint::open(&path, &identity(), true).expect("forced resume");
    assert_eq!(forced.len(), 3);

    std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
}
