//! Compiled-trace differential suite: replaying a v3 trace (whose
//! precomputed model section the dispatch hot loop consumes instead of
//! recomputing steering/FU/latency/dependency lookups) must be
//! **bit-identical** — same entry stream, same `SimStats`, same rendered
//! probe JSON — to replaying the same instructions without hints, on both
//! the event-driven and the legacy core. The compiled section is an
//! accelerator, never an oracle: if it disagrees with the live model,
//! these tests catch it before any benchmark trusts the numbers.

use arl::sim::{Machine, ModelHints, TraceEntry, TraceSource};
use arl::timing::{CoreMode, MachineConfig, Recorder, TimingSim};
use arl::trace::{capture_compiled, Replayer};
use arl::workloads::{workload, Scale};

const EVENTS: u64 = 40_000;

/// Captures `name` as a compiled (v3) trace and decodes it back into the
/// hint-annotated entry stream.
fn compiled_entries(name: &str) -> (Vec<TraceEntry>, arl::asm::Program) {
    let spec = workload(name).unwrap_or_else(|| panic!("unknown workload {name}"));
    let program = spec.build(Scale::tiny());
    let trace = capture_compiled(&program, EVENTS, 0)
        .unwrap_or_else(|e| panic!("{name}: compiled capture failed: {e}"));
    let mut replay = Replayer::new(&trace, &program).expect("v3 replayer");
    let mut entries = Vec::new();
    while let Some(e) = replay
        .next_entry()
        .unwrap_or_else(|e| panic!("{name}: v3 replay failed: {e}"))
    {
        assert!(e.model.present, "{name}: v3 replay must carry model hints");
        entries.push(e);
    }
    (entries, program)
}

/// The compiled replay reconstructs the exact live entry stream — the
/// model annotation rides along, the architectural fields never move.
#[test]
fn compiled_replay_matches_live_execution() {
    for name in ["go", "compress", "tomcatv"] {
        let (entries, program) = compiled_entries(name);
        let mut machine = Machine::new(&program);
        for (i, compiled) in entries.iter().enumerate() {
            let live = machine
                .next_entry()
                .expect("live execution")
                .unwrap_or_else(|| panic!("{name}: live stream ended early at {i}"));
            // TraceEntry equality deliberately ignores the model
            // annotation, so this compares the architectural fields.
            assert_eq!(&live, compiled, "{name}: entry {i} diverges");
        }
    }
}

/// All four lever cells — {event, legacy} core × {compiled, plain} trace —
/// produce identical statistics and probe output.
#[test]
fn hint_consumption_is_bit_identical_on_both_cores() {
    for name in ["go", "compress", "tomcatv"] {
        let (compiled, _) = compiled_entries(name);
        let plain: Vec<TraceEntry> = compiled
            .iter()
            .map(|e| {
                let mut p = *e;
                p.model = ModelHints::NONE;
                p
            })
            .collect();
        for config in [
            MachineConfig::decoupled(2, 2),
            MachineConfig::conventional(2, 2),
        ] {
            let mut cells = Vec::new();
            for core in [CoreMode::Event, CoreMode::Legacy] {
                for entries in [&compiled, &plain] {
                    let mut cfg = config.clone();
                    cfg.core = core;
                    let (stats, rec) = TimingSim::run_trace_probed(entries, &cfg, Recorder::new());
                    cells.push((stats, rec.to_json().render()));
                }
            }
            let (head_stats, head_json) = &cells[0];
            for (i, (stats, json)) in cells.iter().enumerate().skip(1) {
                assert_eq!(
                    stats, head_stats,
                    "{name} on {}: lever cell {i} stats diverge",
                    config.name
                );
                assert_eq!(
                    json, head_json,
                    "{name} on {}: lever cell {i} probe JSON diverges",
                    config.name
                );
            }
        }
    }
}
