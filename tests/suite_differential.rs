//! Differential replay tests: the execute-once/replay-many pipeline must
//! be observationally identical to live functional execution.
//!
//! For every suite workload, a captured trace replayed through the
//! predictor evaluator and the cycle-level timing model must reproduce
//! the live run's `Metrics`, `PredictionStats`, and `SimStats`
//! **bit-identically** — not approximately. On top of that, the
//! process-wide functional-instruction counter audits that replay-mode
//! experiments execute each workload exactly once, no matter how many
//! configs they sweep.
//!
//! Every test here serializes on one mutex: the instruction counter is
//! process-global, so counter-sensitive tests must not interleave with
//! other functional executions in this binary.

use std::sync::Mutex;

use arl::core::{Capacity, Context, EvalConfig, Evaluator, PredictorKind};
use arl::sim::{functional_instructions_executed, Machine, TraceEntry, TraceSource};
use arl::timing::{MachineConfig, TimingSim};
use arl::trace::{capture, Replayer};
use arl::workloads::{suite, Scale};
use arl_bench::{ExperimentOptions, ExperimentRun, TraceMode};

static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

const CAP: u64 = 200_000_000;

#[test]
fn replayed_entry_stream_is_bit_identical_for_every_workload() {
    let _guard = lock();
    for spec in suite() {
        let program = spec.build(Scale::tiny());
        let trace = capture(&program, CAP).expect("capture");

        let mut live_entries: Vec<TraceEntry> = Vec::new();
        let mut machine = Machine::new(&program);
        machine
            .run_with(CAP, |e| live_entries.push(*e))
            .expect("live run");

        let mut replayer = Replayer::new(&trace, &program).expect("replayer");
        let mut replayed_entries: Vec<TraceEntry> = Vec::new();
        while let Some(entry) = replayer.next_entry().expect("replay") {
            replayed_entries.push(entry);
        }

        assert_eq!(
            live_entries.len(),
            replayed_entries.len(),
            "{}: entry count",
            spec.name
        );
        for (i, (live, replayed)) in live_entries.iter().zip(&replayed_entries).enumerate() {
            assert_eq!(live, replayed, "{}: entry {i} diverged", spec.name);
        }
        assert_eq!(
            machine.metrics(),
            replayer.metrics(),
            "{}: end-of-run metrics",
            spec.name
        );
    }
}

#[test]
fn replayed_predictor_stats_are_bit_identical_for_every_workload() {
    let _guard = lock();
    let config = EvalConfig {
        kind: PredictorKind::OneBit,
        context: Context::HYBRID_8_24,
        capacity: Capacity::Entries(1 << 14),
        hints: None,
    };
    for spec in suite() {
        let program = spec.build(Scale::tiny());
        let trace = capture(&program, CAP).expect("capture");

        let mut live = Evaluator::new(config.clone());
        let mut machine = Machine::new(&program);
        machine
            .run_with(CAP, |e| live.observe(e))
            .expect("live run");

        let mut replayed = Evaluator::new(config.clone());
        let mut replayer = Replayer::new(&trace, &program).expect("replayer");
        replayed.consume(&mut replayer).expect("replay");

        assert_eq!(
            live.stats(),
            replayed.stats(),
            "{}: ARPT prediction stats diverged",
            spec.name
        );
        assert_eq!(
            live.arpt_occupied(),
            replayed.arpt_occupied(),
            "{}: ARPT occupancy diverged",
            spec.name
        );
    }
}

#[test]
fn replayed_timing_stats_are_bit_identical_for_every_workload() {
    let _guard = lock();
    let config = MachineConfig::decoupled(2, 2);
    for spec in suite() {
        let program = spec.build(Scale::tiny());
        let trace = capture(&program, CAP).expect("capture");

        let live = TimingSim::run_program(&program, &config);

        let mut replayer = Replayer::new(&trace, &program).expect("replayer");
        let replayed = TimingSim::run_source(&mut replayer, &config).expect("replay");

        assert_eq!(live, replayed, "{}: SimStats diverged", spec.name);
    }
}

/// Replay-mode experiments must execute each workload functionally
/// exactly once, regardless of how many configs the sweep fans out to.
#[test]
fn replay_mode_experiments_execute_each_workload_exactly_once() {
    let _guard = lock();
    let opts = ExperimentOptions::new(Scale::tiny(), 2);
    assert_eq!(opts.trace, TraceMode::Replay);

    let before = functional_instructions_executed();
    let run = arl_bench::figure4(&opts);
    let executed = functional_instructions_executed() - before;

    let captures: Vec<_> = run
        .report
        .records
        .iter()
        .filter(|r| r.phase == "capture")
        .collect();
    assert_eq!(captures.len(), suite().len(), "one capture per workload");
    let captured_insts: u64 = captures.iter().map(|r| r.instructions).sum();
    assert!(captured_insts > 0);
    assert_eq!(
        executed, captured_insts,
        "figure4 must execute exactly the 12 capture passes and nothing more"
    );

    // The live-mode control: the same sweep re-executes per cell, so it
    // burns one functional pass per scheme.
    let before = functional_instructions_executed();
    let live = arl_bench::figure4(&opts.with_trace(TraceMode::Live));
    let executed_live = functional_instructions_executed() - before;
    let schemes = live.report.records.len() / suite().len();
    assert_eq!(
        executed_live,
        captured_insts * schemes as u64,
        "live figure4 re-executes every workload once per scheme"
    );

    // And the deliverable: both modes emit byte-identical tables.
    assert_eq!(
        run.text, live.text,
        "figure4 replay text must match live text"
    );
}

/// Figure 8 (the paper's headline timing sweep) and a prediction ablation
/// must render byte-identical tables in live and replay modes.
#[test]
fn live_and_replay_modes_emit_identical_tables() {
    let _guard = lock();
    let opts = ExperimentOptions::new(Scale::tiny(), 2);
    type Experiment = fn(&ExperimentOptions) -> ExperimentRun;
    for (name, f) in [
        ("figure8", arl_bench::figure8 as Experiment),
        ("ablation_twobit", arl_bench::ablation_twobit as Experiment),
    ] {
        let replay = f(&opts);
        let live = f(&opts.with_trace(TraceMode::Live));
        assert_eq!(
            replay.text, live.text,
            "{name}: replay output must be byte-identical to live"
        );
        // Replay adds one leading capture record per workload; the sweep
        // cells themselves must line up one-to-one.
        let replay_cells: Vec<_> = replay
            .report
            .records
            .iter()
            .filter(|r| r.phase != "capture")
            .collect();
        assert_eq!(replay_cells.len(), live.report.records.len());
        for (r, l) in replay_cells.iter().zip(&live.report.records) {
            assert_eq!(r.workload, l.workload, "{name}: cell order");
            assert_eq!(r.config, l.config, "{name}: cell order");
            assert_eq!(r.instructions, l.instructions, "{name}: instructions");
            assert_eq!(r.cycles, l.cycles, "{name}: cycles");
            assert_eq!(r.accuracy, l.accuracy, "{name}: accuracy");
            assert_eq!(r.peak_rss_bytes, l.peak_rss_bytes, "{name}: peak RSS");
        }
    }
}
