//! Cross-crate integration of the cycle-level model: Figure 8's structural
//! invariants on real workloads at test scale.

use arl::sim::Machine;
use arl::timing::{MachineConfig, TimingSim};
use arl::workloads::{workload, Scale};

/// A mixed set: stack-heavy, data-heavy, heap-heavy, and FP.
const REPRESENTATIVES: [&str; 4] = ["vortex", "compress", "li", "swim"];

#[test]
fn committed_instructions_match_the_functional_run() {
    for name in REPRESENTATIVES {
        let program = workload(name).unwrap().build(Scale::tiny());
        let mut m = Machine::new(&program);
        let outcome = m.run(100_000_000).unwrap();
        assert!(outcome.exited);
        for config in [
            MachineConfig::baseline_2_0(),
            MachineConfig::decoupled(3, 3),
        ] {
            let stats = TimingSim::run_program(&program, &config);
            assert_eq!(
                stats.instructions,
                m.retired(),
                "{name} on {}: timing commits exactly the functional stream",
                config.name
            );
        }
    }
}

#[test]
fn bandwidth_upper_bound_dominates_the_baseline() {
    for name in REPRESENTATIVES {
        let program = workload(name).unwrap().build(Scale::tiny());
        let base = TimingSim::run_program(&program, &MachineConfig::baseline_2_0());
        let wide = TimingSim::run_program(&program, &MachineConfig::conventional(16, 2));
        assert!(
            wide.cycles <= base.cycles,
            "{name}: (16+0) must never lose to (2+0): {} vs {}",
            wide.cycles,
            base.cycles
        );
    }
}

#[test]
fn decoupled_machine_beats_the_baseline_on_stack_heavy_code() {
    for name in ["vortex", "li"] {
        let program = workload(name).unwrap().build(Scale::tiny());
        let base = TimingSim::run_program(&program, &MachineConfig::baseline_2_0());
        let split = TimingSim::run_program(&program, &MachineConfig::decoupled(3, 3));
        assert!(
            split.cycles < base.cycles,
            "{name}: (3+3) must beat (2+0): {} vs {}",
            split.cycles,
            base.cycles
        );
        assert!(
            split.lvaq_refs > 0,
            "{name}: stack refs steered to the LVAQ"
        );
    }
}

#[test]
fn in_pipeline_region_prediction_is_paper_accurate() {
    for name in REPRESENTATIVES {
        let program = workload(name).unwrap().build(Scale::tiny());
        let stats = TimingSim::run_program(&program, &MachineConfig::decoupled(2, 2));
        assert!(stats.region_checks > 0);
        assert!(
            stats.region_accuracy() > 0.99,
            "{name}: pipeline ARPT accuracy {}",
            stats.region_accuracy()
        );
    }
}

#[test]
fn lvc_hit_rates_match_the_papers_stack_cache_claim() {
    // "A 4-KB stack cache achieved over 99.5% hit rate ... with an average
    // of about 99.9%."
    for name in REPRESENTATIVES {
        let program = workload(name).unwrap().build(Scale::tiny());
        let stats = TimingSim::run_program(&program, &MachineConfig::decoupled(2, 2));
        let lvc = stats.lvc.expect("decoupled machine has an LVC");
        assert!(
            lvc.hit_rate() > 0.995,
            "{name}: 4KB LVC hit rate {}",
            lvc.hit_rate()
        );
    }
}

#[test]
fn slower_l1_rarely_helps() {
    // Latency is not strictly monotone under port contention: shifting
    // completion times reorders which loads compete for ports each cycle
    // (a real-machine scheduling anomaly). We therefore allow a small
    // anomaly margin per workload and require strict monotonicity on the
    // average.
    let mut total_fast = 0u64;
    let mut total_slow = 0u64;
    for name in ["compress", "swim", "vortex", "li"] {
        let program = workload(name).unwrap().build(Scale::tiny());
        let fast = TimingSim::run_program(&program, &MachineConfig::conventional(3, 2));
        let slow = TimingSim::run_program(&program, &MachineConfig::conventional(3, 3));
        assert!(
            slow.cycles as f64 >= fast.cycles as f64 * 0.95,
            "{name}: 3-cycle L1 cannot beat 2-cycle by >5%: {} vs {}",
            slow.cycles,
            fast.cycles
        );
        total_fast += fast.cycles;
        total_slow += slow.cycles;
    }
    assert!(
        total_slow >= total_fast,
        "a slower L1 costs cycles overall: {total_slow} vs {total_fast}"
    );
}

#[test]
fn probing_never_perturbs_experiment_output() {
    // The observability layer is opt-in and monomorphized away when off;
    // with it on, rendered tables and structured records must stay
    // byte-identical — the recorder watches the pipeline, never steers it.
    use arl::workloads::Scale;
    use arl_bench::{probe, ExperimentOptions};
    let base = ExperimentOptions::new(Scale::tiny(), 1);
    let plain = probe(&base, "compress");
    let probed = probe(&base.with_probe(true), "compress");
    assert_eq!(plain.text, probed.text, "rendered output diverged");
    // Host wall-clock is the one legitimately nondeterministic field.
    let strip_clock = |run: &arl_bench::ExperimentRun| {
        run.report
            .records
            .iter()
            .cloned()
            .map(|mut r| {
                r.wall_seconds = 0.0;
                r
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(
        strip_clock(&plain),
        strip_clock(&probed),
        "structured records diverged"
    );
    assert!(
        plain.probe.is_none(),
        "unprobed run emitted a probe document"
    );
    let doc = probed.probe.expect("probed run carries its document");
    let cells = doc.get("cells").unwrap().as_array().unwrap();
    assert_eq!(cells.len(), 3, "one probe cell per machine configuration");
}

#[test]
fn stall_attribution_accounts_for_every_cycle() {
    // Conservation identity: each cycle is either useful (something
    // committed) or attributed to exactly one stall cause — so the
    // recorder's tallies must reproduce the cycle count of the stats it
    // rode along with, on every (workload × config) cell.
    use arl::timing::{Recorder, StallCause};
    for name in ["vortex", "swim"] {
        let program = workload(name).unwrap().build(Scale::tiny());
        for config in MachineConfig::figure8_suite() {
            let (stats, rec) = TimingSim::run_program_probed(&program, &config, Recorder::new());
            assert_eq!(
                rec.cycles(),
                stats.cycles,
                "{name} on {}: recorder saw every cycle",
                config.name
            );
            let attributed: u64 = StallCause::ALL.iter().map(|&c| rec.stall_cycles(c)).sum();
            assert_eq!(attributed, rec.total_stall_cycles());
            assert_eq!(
                rec.useful_cycles() + attributed,
                stats.cycles,
                "{name} on {}: useful + attributed covers the run",
                config.name
            );
            assert_eq!(
                rec.commit_util().total(),
                stats.cycles,
                "{name} on {}: one histogram sample per cycle",
                config.name
            );
        }
    }
}

#[test]
fn misprediction_penalty_costs_cycles() {
    // Raising the region-misprediction penalty can never make a workload
    // with mispredictions faster.
    let program = workload("perl").unwrap().build(Scale::tiny());
    let mut cheap = MachineConfig::decoupled(2, 2);
    cheap.region_mispredict_penalty = 1;
    let mut dear = MachineConfig::decoupled(2, 2);
    dear.region_mispredict_penalty = 20;
    dear.name = "(2+2)p20".into();
    let a = TimingSim::run_program(&program, &cheap);
    let b = TimingSim::run_program(&program, &dear);
    assert!(a.region_mispredicts > 0, "perl has some mispredictions");
    assert!(
        b.cycles >= a.cycles,
        "larger penalty cannot speed things up: {} vs {}",
        b.cycles,
        a.cycles
    );
}
