//! Trace-container robustness: truncation at *every* byte offset and
//! arbitrary byte corruption must surface as `SourceError::Corrupt`,
//! never a panic and never a silently-adopted trace.
//!
//! The exhaustive fixture sweep is feasible because `Trace::from_bytes`
//! validates the O(1) structural footer invariants before the O(n)
//! checksum: a truncated container lands its footer window on arbitrary
//! event-stream bytes, which trips a structural check, so the whole
//! 338K-offset sweep costs O(n) instead of O(n²) hashing.

use std::panic::{catch_unwind, AssertUnwindSafe};

use arl::sim::{Metrics, SourceError};
use arl::trace::{Trace, TraceEvent};
use proptest::prelude::*;

const FIXTURE: &[u8] = include_bytes!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/perl_tiny.arltrace"
));

fn expect_corrupt(bytes: Vec<u8>, what: &str) {
    let result = catch_unwind(AssertUnwindSafe(|| Trace::from_bytes(bytes)));
    match result {
        Ok(Err(SourceError::Corrupt(_))) => {}
        Ok(Err(other)) => panic!("{what}: wrong error variant: {other}"),
        Ok(Ok(_)) => panic!("{what}: corrupt container was adopted"),
        Err(_) => panic!("{what}: Trace::from_bytes panicked"),
    }
}

/// A small synthetic trace with a non-trivial event mix, for the
/// exhaustive truncation-and-flip loops that would be too slow against
/// the full fixture.
fn small_trace_bytes() -> Vec<u8> {
    let events: Vec<TraceEvent> = (0..24)
        .map(|i| TraceEvent {
            pc: 0x10_000 + i * 8,
            next_pc: 0x10_000 + (i + 1) * 8,
            taken: i % 3 == 0,
            mem_addr: (i % 2 == 0).then_some(0x7000_0000 + i * 16),
            value: (i % 4 == 0).then_some(i as i64 - 7),
        })
        .collect();
    let metrics = Metrics {
        instructions: events.len() as u64,
        resident_pages: 3,
        peak_rss_bytes: 3 * 4096,
        output_values: 2,
        exited: true,
    };
    Trace::from_events(0x10_000, &events, &metrics).into_bytes()
}

/// The golden fixture, truncated at every byte offset from 0 to len-1,
/// must always be rejected as corrupt without panicking.
#[test]
fn fixture_truncation_at_every_offset_is_rejected() {
    assert!(
        Trace::from_bytes(FIXTURE.to_vec()).is_ok(),
        "the untruncated fixture must validate"
    );
    for len in 0..FIXTURE.len() {
        expect_corrupt(
            FIXTURE[..len].to_vec(),
            &format!("fixture truncated to {len} bytes"),
        );
    }
}

/// Exhaustive truncation of a small synthetic trace: same invariant,
/// independent of the fixture's particular byte patterns.
#[test]
fn small_trace_truncation_at_every_offset_is_rejected() {
    let bytes = small_trace_bytes();
    assert!(Trace::from_bytes(bytes.clone()).is_ok());
    for len in 0..bytes.len() {
        expect_corrupt(
            bytes[..len].to_vec(),
            &format!("small trace truncated to {len} bytes"),
        );
    }
}

/// Exhaustive single-byte corruption of the small trace: every (offset,
/// XOR-mask) pair with a low-weight mask is rejected; a full 255-mask
/// sweep at every offset would be slow, so sweep all offsets with a few
/// masks and all masks at the structurally-interesting tail.
#[test]
fn small_trace_single_byte_flips_are_rejected() {
    let bytes = small_trace_bytes();
    for at in 0..bytes.len() {
        for mask in [0x01u8, 0x80, 0xFF] {
            let mut corrupt = bytes.clone();
            corrupt[at] ^= mask;
            expect_corrupt(corrupt, &format!("byte {at} xor {mask:#04x}"));
        }
    }
    // Footer + checksum window: every possible flip.
    for at in bytes.len() - 33..bytes.len() {
        for mask in 1u8..=255 {
            let mut corrupt = bytes.clone();
            corrupt[at] ^= mask;
            expect_corrupt(corrupt, &format!("tail byte {at} xor {mask:#04x}"));
        }
    }
}

proptest! {
    /// Sampled single-byte corruption across the full golden fixture.
    #[test]
    fn fixture_byte_flips_are_rejected(pick in any::<u64>(), mask in 1u8..=255) {
        let at = (pick % FIXTURE.len() as u64) as usize;
        let mut corrupt = FIXTURE.to_vec();
        corrupt[at] ^= mask;
        prop_assert!(
            matches!(Trace::from_bytes(corrupt), Err(SourceError::Corrupt(_))),
            "flipping fixture byte {} with mask {:#04x} went undetected", at, mask
        );
    }

    /// Sampled multi-point damage: truncate the fixture *and* corrupt a
    /// surviving byte — still never a panic, always `Corrupt`.
    #[test]
    fn fixture_truncate_then_flip_is_rejected(
        keep in 1usize..338_000,
        pick in any::<u64>(),
        mask in 1u8..=255,
    ) {
        let keep = keep.min(FIXTURE.len() - 1);
        let mut corrupt = FIXTURE[..keep].to_vec();
        let at = (pick % corrupt.len() as u64) as usize;
        corrupt[at] ^= mask;
        expect_corrupt(corrupt, &format!("truncate to {keep} then flip byte {at}"));
    }
}
