//! Trace-container robustness: truncation at *every* byte offset and
//! arbitrary byte corruption must surface as `SourceError::Corrupt`,
//! never a panic and never a silently-adopted trace.
//!
//! The exhaustive fixture sweep is feasible because `Trace::from_bytes`
//! validates the O(1) structural footer invariants before the O(n)
//! checksum: a truncated container lands its footer window on arbitrary
//! event-stream bytes, which trips a structural check, so the whole
//! 338K-offset sweep costs O(n) instead of O(n²) hashing.

use std::panic::{catch_unwind, AssertUnwindSafe};

use arl::sim::{Metrics, SourceError};
use arl::trace::{
    capture_compiled, capture_snapshotted, fnv1a64, Replayer, SnapshotRecord, Trace, TraceEvent,
    VERSION, VERSION_V1, VERSION_V3,
};
use arl::workloads::{workload, Scale};
use proptest::prelude::*;

const FIXTURE: &[u8] = include_bytes!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/perl_tiny.arltrace"
));

fn expect_corrupt(bytes: Vec<u8>, what: &str) {
    let result = catch_unwind(AssertUnwindSafe(|| Trace::from_bytes(bytes)));
    match result {
        Ok(Err(SourceError::Corrupt(_))) => {}
        Ok(Err(other)) => panic!("{what}: wrong error variant: {other}"),
        Ok(Ok(_)) => panic!("{what}: corrupt container was adopted"),
        Err(_) => panic!("{what}: Trace::from_bytes panicked"),
    }
}

/// A small synthetic trace with a non-trivial event mix, for the
/// exhaustive truncation-and-flip loops that would be too slow against
/// the full fixture.
fn small_trace_bytes() -> Vec<u8> {
    let events: Vec<TraceEvent> = (0..24)
        .map(|i| TraceEvent {
            pc: 0x10_000 + i * 8,
            next_pc: 0x10_000 + (i + 1) * 8,
            taken: i % 3 == 0,
            mem_addr: (i % 2 == 0).then_some(0x7000_0000 + i * 16),
            value: (i % 4 == 0).then_some(i as i64 - 7),
        })
        .collect();
    let metrics = Metrics {
        instructions: events.len() as u64,
        resident_pages: 3,
        peak_rss_bytes: 3 * 4096,
        output_values: 2,
        exited: true,
    };
    Trace::from_events(0x10_000, &events, &metrics).into_bytes()
}

/// The golden fixture, truncated at every byte offset from 0 to len-1,
/// must always be rejected as corrupt without panicking.
#[test]
fn fixture_truncation_at_every_offset_is_rejected() {
    assert!(
        Trace::from_bytes(FIXTURE.to_vec()).is_ok(),
        "the untruncated fixture must validate"
    );
    for len in 0..FIXTURE.len() {
        expect_corrupt(
            FIXTURE[..len].to_vec(),
            &format!("fixture truncated to {len} bytes"),
        );
    }
}

/// Exhaustive truncation of a small synthetic trace: same invariant,
/// independent of the fixture's particular byte patterns.
#[test]
fn small_trace_truncation_at_every_offset_is_rejected() {
    let bytes = small_trace_bytes();
    assert!(Trace::from_bytes(bytes.clone()).is_ok());
    for len in 0..bytes.len() {
        expect_corrupt(
            bytes[..len].to_vec(),
            &format!("small trace truncated to {len} bytes"),
        );
    }
}

/// Exhaustive single-byte corruption of the small trace: every (offset,
/// XOR-mask) pair with a low-weight mask is rejected; a full 255-mask
/// sweep at every offset would be slow, so sweep all offsets with a few
/// masks and all masks at the structurally-interesting tail.
#[test]
fn small_trace_single_byte_flips_are_rejected() {
    let bytes = small_trace_bytes();
    for at in 0..bytes.len() {
        for mask in [0x01u8, 0x80, 0xFF] {
            let mut corrupt = bytes.clone();
            corrupt[at] ^= mask;
            expect_corrupt(corrupt, &format!("byte {at} xor {mask:#04x}"));
        }
    }
    // Footer + checksum window: every possible flip.
    for at in bytes.len() - 33..bytes.len() {
        for mask in 1u8..=255 {
            let mut corrupt = bytes.clone();
            corrupt[at] ^= mask;
            expect_corrupt(corrupt, &format!("tail byte {at} xor {mask:#04x}"));
        }
    }
}

/// Container layout constants mirrored from the format docs, for the
/// forgery tests that splice and re-seal specific windows.
const CHECKSUM_LEN: usize = 8;
const FOOTER_LEN: usize = 25;
const SNAP_TRAILER_LEN: usize = 16;
const HEADER_LEN: usize = 13;

/// A small *snapshotted* capture (the first few thousand instructions of
/// a real workload) for the exhaustive sweeps and the snapshot-forgery
/// tests: 5,000 events at interval 250 embeds 19 snapshot records.
const SNAP_EVENTS: u64 = 5_000;
const SNAP_INTERVAL: u64 = 250;

fn small_snapshotted() -> (arl::asm::Program, Trace) {
    let program = workload("go").expect("go workload").build(Scale::tiny());
    let trace = capture_snapshotted(&program, SNAP_EVENTS, SNAP_INTERVAL).expect("capture");
    assert_eq!(trace.event_count(), SNAP_EVENTS);
    assert_eq!(trace.snapshot_count(), (SNAP_EVENTS - 1) / SNAP_INTERVAL);
    (program, trace)
}

/// Recomputes the trailing container checksum after tampering — the
/// strongest forgery a bit-flipping adversary with the format spec can
/// produce. Everything these tests reject is rejected *structurally*.
fn reseal(mut bytes: Vec<u8>) -> Vec<u8> {
    let at = bytes.len() - CHECKSUM_LEN;
    let sum = fnv1a64(&bytes[..at]);
    bytes[at..].copy_from_slice(&sum.to_le_bytes());
    bytes
}

/// Byte offset of the snapshot trailer (interval, count) in a v2 trace.
fn trailer_at(bytes: &[u8]) -> usize {
    bytes.len() - CHECKSUM_LEN - FOOTER_LEN - SNAP_TRAILER_LEN
}

/// Byte offset of snapshot record `i` in a v2 trace.
fn record_at(bytes: &[u8], i: usize) -> usize {
    let count = u64::from_le_bytes(
        bytes[trailer_at(bytes) + 8..trailer_at(bytes) + 16]
            .try_into()
            .unwrap(),
    ) as usize;
    trailer_at(bytes) - (count - i) * SnapshotRecord::LEN
}

/// The snapshotted capture, truncated at every byte offset, must always
/// be rejected — the snapshot section adds no resurrectable prefix.
#[test]
fn snapshotted_trace_truncation_at_every_offset_is_rejected() {
    let (_, trace) = small_snapshotted();
    let bytes = trace.into_bytes();
    assert!(Trace::from_bytes(bytes.clone()).is_ok());
    for len in 0..bytes.len() {
        expect_corrupt(
            bytes[..len].to_vec(),
            &format!("snapshotted trace truncated to {len} bytes"),
        );
    }
}

/// Single-byte flips anywhere in the snapshotted capture — event stream,
/// snapshot records, trailer, footer, checksum — are all rejected. The
/// tail window (last snapshot record onward) gets every mask.
#[test]
fn snapshotted_trace_single_byte_flips_are_rejected() {
    let (_, trace) = small_snapshotted();
    let count = trace.snapshot_count() as usize;
    let bytes = trace.into_bytes();
    for at in 0..bytes.len() {
        for mask in [0x01u8, 0x80, 0xFF] {
            let mut corrupt = bytes.clone();
            corrupt[at] ^= mask;
            expect_corrupt(corrupt, &format!("snapshotted byte {at} xor {mask:#04x}"));
        }
    }
    let last_record = record_at(&bytes, count - 1);
    for at in last_record..bytes.len() {
        for mask in 1u8..=255 {
            let mut corrupt = bytes.clone();
            corrupt[at] ^= mask;
            expect_corrupt(corrupt, &format!("snapshot tail byte {at} xor {mask:#04x}"));
        }
    }
}

/// Forged snapshot-trailer fields *with the container checksum re-sealed*
/// must be refused by the O(1) structural invariants at adoption — before
/// any decode loop can trust them.
#[test]
fn resealed_trailer_forgeries_are_rejected_structurally() {
    let (_, trace) = small_snapshotted();
    let count = trace.snapshot_count();
    let bytes = trace.into_bytes();
    let trailer = trailer_at(&bytes);
    let forge = |interval: u64, count: u64| {
        let mut forged = bytes.clone();
        forged[trailer..trailer + 8].copy_from_slice(&interval.to_le_bytes());
        forged[trailer + 8..trailer + 16].copy_from_slice(&count.to_le_bytes());
        reseal(forged)
    };
    // Count inflated past the container: the multiplication guard fires.
    expect_corrupt(forge(SNAP_INTERVAL, u64::MAX / 64), "absurd snapshot count");
    expect_corrupt(forge(SNAP_INTERVAL, u64::MAX), "overflowing snapshot count");
    // One extra record would place the last boundary at/after the event
    // count — structurally impossible for a genuine capture.
    expect_corrupt(forge(SNAP_INTERVAL, count + 1), "snapshot count + 1");
    // A zero interval with records present is meaningless.
    expect_corrupt(forge(0, count), "zero interval with records");
    // An interval pushing the last boundary past the stream end.
    expect_corrupt(forge(SNAP_EVENTS, count), "oversized interval");
    // interval × count overflow must not wrap around the boundary check.
    expect_corrupt(forge(u64::MAX / 2, 3), "interval × count overflow");
}

/// Undercounting the trailer by one (re-sealed) shifts which bytes are
/// read as records; adoption cannot catch that in O(1), but every
/// snapshot access then fails its own `(i+1) × interval` boundary check,
/// so no span replay can start from a misaligned record.
#[test]
fn resealed_undercount_fails_every_snapshot_access() {
    let (program, trace) = small_snapshotted();
    let count = trace.snapshot_count();
    let bytes = trace.into_bytes();
    let trailer = trailer_at(&bytes);
    let mut forged = bytes;
    forged[trailer + 8..trailer + 16].copy_from_slice(&(count - 1).to_le_bytes());
    let adopted = Trace::from_bytes(reseal(forged)).expect("undercount passes O(1) adoption");
    for i in 0..count - 1 {
        assert!(
            adopted.snapshot(i).is_err(),
            "misaligned snapshot {i} must fail its boundary check"
        );
        assert!(
            Replayer::open_span(&adopted, &program, i + 1, count).is_err(),
            "no span may open from misaligned snapshot {i}"
        );
    }
    // Boundary 0 needs no snapshot record: the full replay still works.
    let mut full = Replayer::new(&adopted, &program).expect("full replay needs no snapshots");
    let mut n = 0u64;
    while arl::sim::TraceSource::next_entry(&mut full)
        .expect("replay")
        .is_some()
    {
        n += 1;
    }
    assert_eq!(n, SNAP_EVENTS);
}

/// Forging *record* fields with both checksums re-sealed (the record's
/// own and the container's) still cannot smuggle a bad resume cursor or
/// boundary past `Trace::snapshot` / `Replayer::open_span`.
#[test]
fn resealed_record_forgeries_are_rejected_in_o1() {
    let (program, trace) = small_snapshotted();
    let genuine = trace.snapshot(3).expect("genuine record");
    let body_len = {
        let bytes = trace.as_bytes();
        (record_at(bytes, 0) - HEADER_LEN) as u64
    };
    let splice = |record: &SnapshotRecord| {
        let bytes = trace.as_bytes().to_vec();
        let at = record_at(&bytes, 3);
        let mut forged = bytes;
        forged[at..at + SnapshotRecord::LEN].copy_from_slice(&record.to_bytes());
        Trace::from_bytes(reseal(forged)).expect("record forgeries pass container checks")
    };
    // Cursor pointing past the event stream.
    let mut bad_cursor = genuine;
    bad_cursor.body_pos = body_len + 1;
    let adopted = splice(&bad_cursor);
    assert!(adopted.snapshot(3).is_err(), "oversized cursor must fail");
    assert!(Replayer::open_span(&adopted, &program, 4, 6).is_err());
    // Boundary not equal to (i+1) × interval.
    let mut bad_boundary = genuine;
    bad_boundary.inst_index += 1;
    let adopted = splice(&bad_boundary);
    assert!(adopted.snapshot(3).is_err(), "shifted boundary must fail");
    assert!(Replayer::open_span(&adopted, &program, 4, 6).is_err());
    // Splicing a *valid* record into the wrong slot fails the same check.
    let neighbor = trace.snapshot(4).expect("neighbor record");
    let adopted = splice(&neighbor);
    assert!(
        adopted.snapshot(3).is_err(),
        "transplanted record must fail"
    );
    // Untampered slots stay readable — rejection is per-record, O(1).
    assert_eq!(adopted.snapshot(4).expect("slot 4 intact"), neighbor);
}

/// A small *compiled* (v3) capture for the exhaustive compiled-section
/// sweeps: enough events that the model section spans several cache
/// lines, small enough that every-offset loops stay cheap.
const COMPILED_EVENTS: u64 = 600;

fn small_compiled() -> (arl::asm::Program, Trace) {
    let program = workload("go").expect("go workload").build(Scale::tiny());
    let trace = capture_compiled(&program, COMPILED_EVENTS, 0).expect("compiled capture");
    assert_eq!(trace.version(), VERSION_V3);
    assert_eq!(trace.event_count(), COMPILED_EVENTS);
    (program, trace)
}

/// Byte range `[start, end)` of the compiled section (records plus the
/// section checksum) within the serialized v3 container.
fn compiled_window(trace: &Trace) -> (usize, usize) {
    let bytes = trace.as_bytes();
    let section = trace
        .compiled_section()
        .expect("a v3 trace carries a compiled section");
    let start = section.as_ptr() as usize - bytes.as_ptr() as usize;
    // The 8-byte section checksum sits immediately after the records.
    (start, start + section.len() + CHECKSUM_LEN)
}

/// The compiled capture, truncated at every byte offset, must always be
/// rejected — the model section adds no resurrectable prefix.
#[test]
fn compiled_trace_truncation_at_every_offset_is_rejected() {
    let (_, trace) = small_compiled();
    let bytes = trace.into_bytes();
    assert!(Trace::from_bytes(bytes.clone()).is_ok());
    for len in 0..bytes.len() {
        expect_corrupt(
            bytes[..len].to_vec(),
            &format!("compiled trace truncated to {len} bytes"),
        );
    }
}

/// Single-byte flips anywhere in the compiled capture are rejected, and —
/// the stronger property — flips *inside the compiled section with the
/// container checksum re-sealed* are still refused, which proves the
/// section's own checksum (not just the trailing container hash) guards
/// the precomputed model bytes the replay hot loop trusts blindly.
#[test]
fn compiled_section_byte_flips_are_rejected_even_resealed() {
    let (_, trace) = small_compiled();
    let (start, end) = compiled_window(&trace);
    let bytes = trace.into_bytes();
    for at in 0..bytes.len() {
        for mask in [0x01u8, 0x80, 0xFF] {
            let mut corrupt = bytes.clone();
            corrupt[at] ^= mask;
            expect_corrupt(corrupt, &format!("compiled byte {at} xor {mask:#04x}"));
        }
    }
    for at in start..end {
        for mask in [0x01u8, 0x80, 0xFF] {
            let mut corrupt = bytes.clone();
            corrupt[at] ^= mask;
            expect_corrupt(
                reseal(corrupt),
                &format!("resealed compiled byte {at} xor {mask:#04x}"),
            );
        }
    }
}

/// A compiled container replays the same entry stream (modulo the model
/// annotation) as an uncompiled capture of the same program — corruption
/// coverage means nothing if adoption of the *genuine* v3 bytes broke.
#[test]
fn compiled_trace_round_trips_through_bytes() {
    let (program, trace) = small_compiled();
    let adopted = Trace::from_bytes(trace.into_bytes()).expect("genuine v3 re-adopts");
    assert_eq!(adopted.version(), VERSION_V3);
    let mut replay = Replayer::new(&adopted, &program).expect("v3 replayer");
    let mut n = 0u64;
    while let Some(entry) = arl::sim::TraceSource::next_entry(&mut replay).expect("v3 replay") {
        assert!(entry.model.present, "v3 replay must surface model hints");
        n += 1;
    }
    assert_eq!(n, COMPILED_EVENTS);
}

/// Forward compatibility floor: the frozen v1 fixture and the committed
/// v2 fixture keep decoding under the v3-aware parser, and neither grows
/// a compiled section retroactively.
#[test]
fn v1_and_v2_fixtures_still_decode_without_compiled_sections() {
    let v1 = std::fs::read(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/perl_tiny_v1.arltrace"
    ))
    .expect("read v1 fixture");
    let v1 = Trace::from_bytes(v1).expect("v1 fixture must keep validating");
    assert_eq!(v1.version(), VERSION_V1);
    assert!(v1.compiled_section().is_none(), "v1 has no model section");

    let v2 = Trace::from_bytes(FIXTURE.to_vec()).expect("v2 fixture must keep validating");
    assert_eq!(v2.version(), VERSION);
    assert!(v2.compiled_section().is_none(), "v2 has no model section");
}

proptest! {
    /// The 64-byte snapshot record codec round-trips every field value.
    #[test]
    fn snapshot_record_round_trips(
        inst_index in any::<u64>(),
        body_pos in any::<u64>(),
        prev_next_pc in any::<u64>(),
        prev_addr in any::<u64>(),
        prev_value in any::<i64>(),
        ghr in any::<u64>(),
        ra in any::<u64>(),
    ) {
        let record = SnapshotRecord {
            inst_index,
            body_pos,
            prev_next_pc,
            prev_addr,
            prev_value,
            ghr,
            ra,
        };
        let wire = record.to_bytes();
        prop_assert!(wire.len() == SnapshotRecord::LEN);
        let decoded = SnapshotRecord::from_bytes(&wire).expect("sealed record decodes");
        prop_assert!(decoded == record, "round trip changed the record");
    }

    /// Any single-byte flip in a serialized snapshot record — payload or
    /// embedded checksum — is rejected by the record's own O(1) check.
    #[test]
    fn snapshot_record_byte_flips_are_rejected(
        inst_index in any::<u64>(),
        body_pos in any::<u64>(),
        ghr in any::<u64>(),
        at in 0usize..SnapshotRecord::LEN,
        mask in 1u8..=255,
    ) {
        let record = SnapshotRecord {
            inst_index,
            body_pos,
            prev_next_pc: 0x10_000,
            prev_addr: 0x7000_0000,
            prev_value: -1,
            ghr,
            ra: 0x10_008,
        };
        let mut wire = record.to_bytes();
        wire[at] ^= mask;
        prop_assert!(
            SnapshotRecord::from_bytes(&wire).is_err(),
            "flipping record byte {} with mask {:#04x} went undetected", at, mask
        );
    }
}

proptest! {
    /// Sampled single-byte corruption across the full golden fixture.
    #[test]
    fn fixture_byte_flips_are_rejected(pick in any::<u64>(), mask in 1u8..=255) {
        let at = (pick % FIXTURE.len() as u64) as usize;
        let mut corrupt = FIXTURE.to_vec();
        corrupt[at] ^= mask;
        prop_assert!(
            matches!(Trace::from_bytes(corrupt), Err(SourceError::Corrupt(_))),
            "flipping fixture byte {} with mask {:#04x} went undetected", at, mask
        );
    }

    /// Sampled multi-point damage: truncate the fixture *and* corrupt a
    /// surviving byte — still never a panic, always `Corrupt`.
    #[test]
    fn fixture_truncate_then_flip_is_rejected(
        keep in 1usize..338_000,
        pick in any::<u64>(),
        mask in 1u8..=255,
    ) {
        let keep = keep.min(FIXTURE.len() - 1);
        let mut corrupt = FIXTURE[..keep].to_vec();
        let at = (pick % corrupt.len() as u64) as usize;
        corrupt[at] ^= mask;
        expect_corrupt(corrupt, &format!("truncate to {keep} then flip byte {at}"));
    }
}
