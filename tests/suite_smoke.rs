//! End-to-end smoke for every bench entry point at `Scale::tiny()`.
//!
//! Each experiment runs twice — serial (`threads = 1`) and on a 2-worker
//! pool — and the rendered text must be **byte-identical**: the parallel
//! runner folds cells in suite order, so scheduling must never leak into
//! the output. The structured `SuiteReport` is additionally written to a
//! temp file via the `BENCH_*.json` path and parsed back, pinning the
//! schema every binary emits.

use std::collections::BTreeSet;

use arl::stats::Json;
use arl::workloads::{suite, Scale};
use arl_bench::{ExperimentOptions, ExperimentRun, JSON_SCHEMA};

/// Runs one experiment serial and parallel, checks the determinism
/// contract plus JSON round-trip, and returns the parallel run.
fn smoke(name: &str, f: impl Fn(&ExperimentOptions) -> ExperimentRun) -> ExperimentRun {
    let serial = f(&ExperimentOptions::new(Scale::tiny(), 1));
    let parallel = f(&ExperimentOptions::new(Scale::tiny(), 2));
    assert_eq!(
        serial.text, parallel.text,
        "{name}: parallel text must be byte-identical to serial"
    );
    assert!(!parallel.text.is_empty(), "{name}: produced no output");
    assert_eq!(parallel.report.experiment, name);
    assert_eq!(parallel.report.threads, 2);
    assert_eq!(parallel.report.scale, "tiny");
    assert_eq!(
        serial.report.records.len(),
        parallel.report.records.len(),
        "{name}: cell count must not depend on the worker count"
    );
    for (s, p) in serial.report.records.iter().zip(&parallel.report.records) {
        assert_eq!(s.workload, p.workload, "{name}: record order");
        assert_eq!(s.config, p.config, "{name}: record order");
        assert_eq!(s.phase, p.phase, "{name}: record order");
        assert_eq!(s.instructions, p.instructions, "{name}: determinism");
        assert_eq!(s.cycles, p.cycles, "{name}: determinism");
        assert_eq!(s.peak_rss_bytes, p.peak_rss_bytes, "{name}: determinism");
    }

    // BENCH_*.json: write to a temp dir, parse back, check the schema.
    let dir = std::env::temp_dir().join(format!("arl-smoke-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = parallel.report.write_json(&dir).unwrap();
    assert_eq!(
        path.file_name().unwrap().to_str().unwrap(),
        format!("BENCH_{name}.json")
    );
    let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(doc.get("schema").unwrap().as_str(), Some(JSON_SCHEMA));
    assert_eq!(doc.get("experiment").unwrap().as_str(), Some(name));
    assert!(doc.get("capture_seconds").unwrap().as_f64().is_some());
    assert!(doc.get("replay_seconds").unwrap().as_f64().is_some());
    let records = doc.get("records").unwrap().as_array().unwrap();
    assert_eq!(records.len(), parallel.report.records.len());
    for record in records {
        for key in [
            "workload",
            "config",
            "phase",
            "instructions",
            "cycles",
            "ipc",
            "accuracy",
            "wall_seconds",
            "peak_rss_bytes",
        ] {
            assert!(
                record.get(key).is_some(),
                "{name}: record missing `{key}` field"
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
    parallel
}

/// Asserts the experiment's records span all 12 suite workloads.
fn covers_suite(name: &str, run: &ExperimentRun) {
    let seen: BTreeSet<&str> = run
        .report
        .records
        .iter()
        .map(|r| r.workload.as_str())
        .collect();
    for spec in suite() {
        assert!(
            seen.contains(spec.name),
            "{name}: records missing workload {}",
            spec.name
        );
    }
}

#[test]
fn table1_smoke() {
    covers_suite("table1", &smoke("table1", arl_bench::table1));
}

#[test]
fn table2_smoke() {
    covers_suite("table2", &smoke("table2", arl_bench::table2));
}

#[test]
fn table3_smoke() {
    covers_suite("table3", &smoke("table3", arl_bench::table3));
}

#[test]
fn table4_smoke() {
    // Table 4 is a parameter dump: no cells, but still a valid report.
    let run = smoke("table4", arl_bench::table4);
    assert!(run.report.records.is_empty());
    assert!(run.text.contains("base machine model"));
}

#[test]
fn figure2_smoke() {
    covers_suite("figure2", &smoke("figure2", arl_bench::figure2));
}

#[test]
fn figure4_smoke() {
    let run = smoke("figure4", arl_bench::figure4);
    covers_suite("figure4", &run);
    // One capture per workload, then workloads × 5 replayed schemes,
    // every replay cell with a measured accuracy.
    assert_eq!(run.report.records.len(), suite().len() * (1 + 5));
    assert!(run
        .report
        .records
        .iter()
        .filter(|r| r.phase == "replay")
        .all(|r| r.accuracy.is_some()));
    assert_eq!(
        run.report
            .records
            .iter()
            .filter(|r| r.phase == "capture")
            .count(),
        suite().len()
    );
}

#[test]
fn figure5_smoke() {
    let run = smoke("figure5", arl_bench::figure5);
    covers_suite("figure5", &run);
    // One capture per workload plus 5 capacities × {no hints, hints}.
    assert_eq!(run.report.records.len(), suite().len() * (1 + 10));
}

#[test]
fn figure8_smoke() {
    let run = smoke("figure8", arl_bench::figure8);
    covers_suite("figure8", &run);
    // One capture per workload, then workloads × 8 machine
    // configurations, every replayed cell with cycle counts.
    assert_eq!(run.report.records.len(), suite().len() * (1 + 8));
    assert!(run
        .report
        .records
        .iter()
        .filter(|r| r.phase == "replay")
        .all(|r| r.cycles.is_some() && r.ipc.is_some() && r.peak_rss_bytes > 0));
    assert!(run.report.records.iter().all(|r| r.peak_rss_bytes > 0));
}

#[test]
fn ablation_l1size_smoke() {
    covers_suite(
        "ablation_l1size",
        &smoke("ablation_l1size", arl_bench::ablation_l1size),
    );
}

#[test]
fn ablation_lvc_smoke() {
    covers_suite(
        "ablation_lvc",
        &smoke("ablation_lvc", arl_bench::ablation_lvc),
    );
}

#[test]
fn ablation_ports_smoke() {
    covers_suite(
        "ablation_ports",
        &smoke("ablation_ports", arl_bench::ablation_ports),
    );
}

#[test]
fn ablation_recovery_smoke() {
    covers_suite(
        "ablation_recovery",
        &smoke("ablation_recovery", arl_bench::ablation_recovery),
    );
}

#[test]
fn ablation_twobit_smoke() {
    covers_suite(
        "ablation_twobit",
        &smoke("ablation_twobit", arl_bench::ablation_twobit),
    );
}

#[test]
fn bench_json_schema_is_stable() {
    // A checked-in `BENCH_*.json` emitted by an earlier build must keep
    // parsing with today's parser and carry the same schema identifier
    // and record fields — consumers of the trajectory files rely on it.
    let fixture = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/BENCH_figure8.json"
    );
    let doc = Json::parse(&std::fs::read_to_string(fixture).unwrap()).unwrap();
    assert_eq!(doc.get("schema").unwrap().as_str(), Some(JSON_SCHEMA));
    assert_eq!(doc.get("experiment").unwrap().as_str(), Some("figure8"));
    assert_eq!(doc.get("scale").unwrap().as_str(), Some("tiny"));
    assert_eq!(doc.get("threads").unwrap().as_u64(), Some(2));
    assert!(doc.get("capture_seconds").unwrap().as_f64().unwrap() > 0.0);
    assert!(doc.get("replay_seconds").unwrap().as_f64().unwrap() > 0.0);
    // 12 captures + 12 workloads × 8 configurations.
    let records = doc.get("records").unwrap().as_array().unwrap();
    assert_eq!(records.len(), 108);
    // Records lead with the per-workload capture phase...
    let first = &records[0];
    assert_eq!(first.get("workload").unwrap().as_str(), Some("go"));
    assert_eq!(first.get("config").unwrap().as_str(), Some("capture"));
    assert_eq!(first.get("phase").unwrap().as_str(), Some("capture"));
    assert_eq!(first.get("instructions").unwrap().as_u64(), Some(130_009));
    assert_eq!(first.get("cycles"), Some(&Json::Null));
    assert_eq!(first.get("peak_rss_bytes").unwrap().as_u64(), Some(16_384));
    // ...and the replayed baseline cell carries the exact cycle count the
    // pre-trace harness measured with live per-cell execution (the
    // `arl-bench/v1` fixture pinned 28_371 for this cell too).
    let baseline = records
        .iter()
        .find(|r| {
            r.get("workload").unwrap().as_str() == Some("go")
                && r.get("config").unwrap().as_str() == Some("(2+0)")
        })
        .expect("go/(2+0) record");
    assert_eq!(baseline.get("phase").unwrap().as_str(), Some("replay"));
    assert_eq!(
        baseline.get("instructions").unwrap().as_u64(),
        Some(130_009)
    );
    assert_eq!(baseline.get("cycles").unwrap().as_u64(), Some(28_371));
    assert!(baseline.get("ipc").unwrap().as_f64().unwrap() > 1.0);
    assert_eq!(baseline.get("accuracy"), Some(&Json::Null));
    assert_eq!(
        baseline.get("peak_rss_bytes").unwrap().as_u64(),
        Some(16_384)
    );
}

#[test]
fn oversubscribed_runner_matches_serial() {
    // Way more workers than cells: claiming must stay race-free and the
    // folded output byte-identical (the unit tests cover `ARL_THREADS`
    // parsing fallbacks; this pins the end-to-end behavior).
    let serial = arl_bench::probe(&ExperimentOptions::new(Scale::tiny(), 1), "perl");
    let oversub = arl_bench::probe(&ExperimentOptions::new(Scale::tiny(), 64), "perl");
    assert_eq!(serial.text, oversub.text);
    assert_eq!(serial.report.records.len(), oversub.report.records.len());
}

#[test]
fn probe_smoke() {
    let run = smoke("probe", |opts| arl_bench::probe(opts, "compress"));
    // One capture plus three replayed configurations.
    assert_eq!(run.report.records.len(), 1 + 3);
    assert!(run.text.contains("cycles="));
}
