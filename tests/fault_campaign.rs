//! Fault-campaign integration: checkpoint/resume produces byte-identical
//! merged output with exactly-once execution, and the full suite shows
//! zero silent corruptions at tiny scale.

use std::sync::Mutex;

use arl::sim::functional_instructions_executed;
use arl_bench::{fault_campaign_with, Checkpoint, ExperimentOptions, FAULTS_SCHEMA};
use arl_faults::{Layer, LayerPlan};
use arl_workloads::Scale;

/// The functional-instruction counter is process-global, so tests that
/// difference it must not interleave.
static SERIAL: Mutex<()> = Mutex::new(());

fn serialize() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn opts() -> ExperimentOptions {
    ExperimentOptions::new(Scale::tiny(), 2)
}

fn plans() -> Vec<LayerPlan> {
    Layer::ALL
        .iter()
        .map(|&layer| LayerPlan {
            layer,
            seed: 42,
            count: 1,
        })
        .collect()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("arl-faultcamp-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn checkpoint_resume_is_byte_identical_and_exactly_once() {
    let _guard = serialize();
    let dir = temp_dir("resume");
    let ckpt_path = dir.join("campaign.ckpt");
    let plans = plans();

    // Reference: an uninterrupted 3-workload campaign, and the
    // functional work it costs (captures only; replays execute nothing).
    let before = functional_instructions_executed();
    let uninterrupted = fault_campaign_with(&opts(), &plans, Some(3), None);
    let full_cost = functional_instructions_executed() - before;
    assert!(!uninterrupted.failed, "{}", uninterrupted.text);
    assert!(full_cost > 0, "captures must execute functionally");

    // Interrupted sweep: run only the first job against a checkpoint,
    // then "crash".
    let before = functional_instructions_executed();
    let first = fault_campaign_with(
        &opts(),
        &plans,
        Some(1),
        Some(Checkpoint::open(&ckpt_path).unwrap()),
    );
    let first_cost = functional_instructions_executed() - before;
    assert!(!first.failed);
    assert!(first_cost > 0 && first_cost < full_cost);

    // Resume: reopen the checkpoint and run the full 3-job sweep. The
    // first job must be served from the checkpoint (no re-execution),
    // and the merged document must be byte-identical to the
    // uninterrupted run.
    let resumed_ckpt = Checkpoint::open(&ckpt_path).unwrap();
    assert_eq!(resumed_ckpt.len(), 1);
    let before = functional_instructions_executed();
    let resumed = fault_campaign_with(&opts(), &plans, Some(3), Some(resumed_ckpt));
    let resume_cost = functional_instructions_executed() - before;
    assert!(!resumed.failed);
    assert_eq!(
        resumed.doc.render(),
        uninterrupted.doc.render(),
        "resumed merge must be byte-identical to the uninterrupted run"
    );
    // Exactly-once: the resume re-executed precisely the two missing
    // workloads (workload builds/replays are deterministic, so the
    // functional-instruction ledger balances to the instruction).
    assert_eq!(
        resume_cost,
        full_cost - first_cost,
        "resume must not re-execute the checkpointed workload"
    );

    // A second resume with everything checkpointed executes nothing.
    let done_ckpt = Checkpoint::open(&ckpt_path).unwrap();
    assert_eq!(done_ckpt.len(), 3);
    let before = functional_instructions_executed();
    let replayed = fault_campaign_with(&opts(), &plans, Some(3), Some(done_ckpt));
    assert_eq!(functional_instructions_executed() - before, 0);
    assert_eq!(replayed.doc.render(), uninterrupted.doc.render());

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn full_suite_tiny_campaign_has_zero_silent_corruptions() {
    let _guard = serialize();
    // The acceptance gate: every workload, every layer, seeded faults —
    // nothing may complete with a corrupted result unnoticed, and the
    // timing layers may never corrupt anything at all.
    let run = fault_campaign_with(&opts(), &plans(), None, None);
    assert!(!run.failed, "campaign failed:\n{}", run.text);
    assert_eq!(run.doc.get("schema").unwrap().as_str(), Some(FAULTS_SCHEMA));
    let records = run.doc.get("records").unwrap().as_array().unwrap();
    assert_eq!(records.len(), 12 * 3, "12 workloads x 3 layers x 1 fault");
    let totals = run.doc.get("totals").unwrap();
    assert_eq!(totals.get("fault_silent").unwrap().as_u64(), Some(0));
    assert_eq!(totals.get("fault_fatal").unwrap().as_u64(), Some(0));
    // Trace corruption is always caught by the container checksum.
    let detected = totals.get("fault_detected").unwrap().as_u64().unwrap();
    assert!(detected >= 12, "every trace fault must be detected");
    assert_eq!(run.doc.get("errors"), None, "no job may fail");
}
