//! Fault-campaign integration: checkpoint/resume produces byte-identical
//! merged output with exactly-once execution, and the full suite shows
//! zero silent corruptions at tiny scale.

use std::sync::Mutex;

use arl::sim::functional_instructions_executed;
use arl::timing::MachineConfig;
use arl_bench::{
    campaign_identity, capture_trace_snapshotted, fault_campaign_with, replay_sharded,
    replay_sharded_supervised, stats_fingerprint, timing_trace, Checkpoint, ExperimentOptions,
    RunIdentity, FAULTS_SCHEMA,
};
use arl_faults::{Layer, LayerPlan};
use arl_workloads::{workload, Scale};

/// The functional-instruction counter is process-global, so tests that
/// difference it must not interleave.
static SERIAL: Mutex<()> = Mutex::new(());

fn serialize() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn opts() -> ExperimentOptions {
    ExperimentOptions::new(Scale::tiny(), 2)
}

fn plans() -> Vec<LayerPlan> {
    Layer::ALL
        .iter()
        .map(|&layer| LayerPlan {
            layer,
            seed: 42,
            count: 1,
        })
        .collect()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("arl-faultcamp-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn checkpoint_resume_is_byte_identical_and_exactly_once() {
    let _guard = serialize();
    let dir = temp_dir("resume");
    let ckpt_path = dir.join("campaign.ckpt");
    let plans = plans();

    // Reference: an uninterrupted 3-workload campaign, and the
    // functional work it costs (captures only; replays execute nothing).
    let before = functional_instructions_executed();
    let uninterrupted = fault_campaign_with(&opts(), &plans, Some(3), None);
    let full_cost = functional_instructions_executed() - before;
    assert!(!uninterrupted.failed, "{}", uninterrupted.text);
    assert!(full_cost > 0, "captures must execute functionally");

    // Interrupted sweep: run only the first job against a checkpoint,
    // then "crash". The identity is the full 3-job sweep's — the cap is
    // the interruption, not a different campaign.
    let identity = campaign_identity(&opts(), &plans);
    let before = functional_instructions_executed();
    let first = fault_campaign_with(
        &opts(),
        &plans,
        Some(1),
        Some(Checkpoint::open(&ckpt_path, &identity, false).unwrap()),
    );
    let first_cost = functional_instructions_executed() - before;
    assert!(!first.failed);
    assert!(first_cost > 0 && first_cost < full_cost);

    // Resume: reopen the checkpoint and run the full 3-job sweep. The
    // first job must be served from the checkpoint (no re-execution),
    // and the merged document must be byte-identical to the
    // uninterrupted run.
    let resumed_ckpt = Checkpoint::open(&ckpt_path, &identity, false).unwrap();
    assert_eq!(resumed_ckpt.len(), 1);
    let before = functional_instructions_executed();
    let resumed = fault_campaign_with(&opts(), &plans, Some(3), Some(resumed_ckpt));
    let resume_cost = functional_instructions_executed() - before;
    assert!(!resumed.failed);
    assert_eq!(
        resumed.doc.render(),
        uninterrupted.doc.render(),
        "resumed merge must be byte-identical to the uninterrupted run"
    );
    // Exactly-once: the resume re-executed precisely the two missing
    // workloads (workload builds/replays are deterministic, so the
    // functional-instruction ledger balances to the instruction).
    assert_eq!(
        resume_cost,
        full_cost - first_cost,
        "resume must not re-execute the checkpointed workload"
    );

    // A second resume with everything checkpointed executes nothing.
    let done_ckpt = Checkpoint::open(&ckpt_path, &identity, false).unwrap();
    assert_eq!(done_ckpt.len(), 3);
    let before = functional_instructions_executed();
    let replayed = fault_campaign_with(&opts(), &plans, Some(3), Some(done_ckpt));
    assert_eq!(functional_instructions_executed() - before, 0);
    assert_eq!(replayed.doc.render(), uninterrupted.doc.render());

    std::fs::remove_dir_all(&dir).unwrap();
}

/// Kill-resume *under sharding*: interrupt a supervised sharded replay
/// mid-plan, resume from the ledger, and land on results bit-identical
/// to both the serial replay and an uninterrupted sharded replay —
/// re-running only the shards the crash lost, and never touching the
/// functional layer at all.
#[test]
fn sharded_kill_resume_is_exactly_once_and_bit_identical() {
    let _guard = serialize();
    let dir = temp_dir("shard");
    let ckpt_path = dir.join("shards.ckpt");

    let program = workload("perl")
        .expect("perl workload")
        .build(Scale::tiny());
    let trace = capture_trace_snapshotted(&program, "perl", 5_000);
    assert!(trace.snapshot_count() >= 4, "need enough segments to shard");
    let config = MachineConfig::decoupled(3, 3);

    // References: serial and uninterrupted 4-way sharded replays agree.
    let serial = timing_trace(&program, &trace, "perl", &config);
    let uninterrupted = replay_sharded(&program, &trace, "perl", &config, 4, false);
    assert_eq!(uninterrupted.stats, serial, "sharded must match serial");

    // Replays reconstruct everything from the trace: zero functional
    // re-execution across interrupt, crash, and resume.
    let before = functional_instructions_executed();

    // Run 2 of the 4 shard jobs against a ledger, then "crash".
    let identity = RunIdentity::new("test-shard").field("workload", "perl");
    let mut ledger = Checkpoint::open(&ckpt_path, &identity, false).unwrap();
    let interrupted = replay_sharded_supervised(
        &program,
        &trace,
        "perl",
        &config,
        4,
        &mut ledger,
        "perl/tiny",
        Some(2),
    );
    assert!(
        interrupted.is_none(),
        "the job cap must interrupt before the final shard"
    );
    drop(ledger);

    // Resume from a freshly reopened ledger: the two completed shards
    // are served from their recorded state blobs, only the lost tail
    // re-runs, and the stitched result is bit-identical.
    let mut ledger = Checkpoint::open(&ckpt_path, &identity, false).unwrap();
    assert_eq!(ledger.len(), 2, "both completed shards must be recorded");
    let resumed = replay_sharded_supervised(
        &program,
        &trace,
        "perl",
        &config,
        4,
        &mut ledger,
        "perl/tiny",
        None,
    )
    .expect("uncapped resume runs to completion");
    assert_eq!(resumed.skipped, 2, "resume must skip the recorded shards");
    assert_eq!(
        resumed.executed + resumed.skipped,
        resumed.plan.len(),
        "every planned shard is either skipped or executed, exactly once"
    );
    assert_eq!(resumed.stats, serial, "resumed stats must match serial");
    assert_eq!(
        format!("{:?}", resumed.stats),
        format!("{:?}", uninterrupted.stats),
        "resumed results must render byte-identically"
    );
    assert_eq!(
        stats_fingerprint(&resumed.stats),
        stats_fingerprint(&uninterrupted.stats)
    );
    assert_eq!(
        functional_instructions_executed() - before,
        0,
        "sharded replay and resume must never execute functionally"
    );

    // A second supervised pass re-runs only the final shard (its stats
    // are never ledgered) and still reproduces the same results.
    let resumed_again = replay_sharded_supervised(
        &program,
        &trace,
        "perl",
        &config,
        4,
        &mut ledger,
        "perl/tiny",
        None,
    )
    .expect("fully checkpointed plan still yields final stats");
    assert_eq!(resumed_again.skipped, 3, "all non-final shards are served");
    assert_eq!(resumed_again.executed, 1);
    assert_eq!(resumed_again.stats, serial);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn full_suite_tiny_campaign_has_zero_silent_corruptions() {
    let _guard = serialize();
    // The acceptance gate: every workload, every layer, seeded faults —
    // nothing may complete with a corrupted result unnoticed, and the
    // timing layers may never corrupt anything at all.
    let run = fault_campaign_with(&opts(), &plans(), None, None);
    assert!(!run.failed, "campaign failed:\n{}", run.text);
    assert_eq!(run.doc.get("schema").unwrap().as_str(), Some(FAULTS_SCHEMA));
    let records = run.doc.get("records").unwrap().as_array().unwrap();
    assert_eq!(records.len(), 12 * 3, "12 workloads x 3 layers x 1 fault");
    let totals = run.doc.get("totals").unwrap();
    assert_eq!(totals.get("fault_silent").unwrap().as_u64(), Some(0));
    assert_eq!(totals.get("fault_fatal").unwrap().as_u64(), Some(0));
    // Trace corruption is always caught by the container checksum.
    let detected = totals.get("fault_detected").unwrap().as_u64().unwrap();
    assert!(detected >= 12, "every trace fault must be detected");
    assert_eq!(run.doc.get("errors"), None, "no job may fail");
}
