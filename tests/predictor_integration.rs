//! Cross-crate integration of the prediction pipeline: accuracy floors per
//! scheme, hint monotonicity, and Table 3 context-pressure ordering.

use arl::core::{Capacity, Context, EvalConfig, Evaluator, HintTable, PredictorKind};
use arl::sim::{Machine, RegionProfiler};
use arl::workloads::{suite, workload, Scale};

const CAP: u64 = 100_000_000;

fn run_eval(program: &arl::asm::Program, config: EvalConfig) -> (f64, Option<usize>) {
    let mut m = Machine::new(program);
    let mut e = Evaluator::new(config);
    m.run_with(CAP, |entry| e.observe(entry)).expect("runs");
    (e.stats().accuracy(), e.arpt_occupied())
}

fn one_bit(context: Context, capacity: Capacity, hints: Option<HintTable>) -> EvalConfig {
    EvalConfig {
        kind: PredictorKind::OneBit,
        context,
        capacity,
        hints,
    }
}

#[test]
fn hybrid_unlimited_is_paper_accurate() {
    // The paper's headline: >99.9% average over full SPEC runs. Tiny-scale
    // runs amplify cold misses, so we assert a ≥99% suite average with a
    // 95% per-workload floor.
    let (mut sum, mut n) = (0.0, 0);
    for spec in suite() {
        let program = spec.build(Scale::tiny());
        let (acc, occupied) = run_eval(
            &program,
            one_bit(Context::HYBRID_8_24, Capacity::Unlimited, None),
        );
        assert!(acc > 0.95, "{}: hybrid unlimited accuracy {acc}", spec.name);
        assert!(occupied.unwrap() > 0);
        sum += acc;
        n += 1;
    }
    assert!(sum / n as f64 > 0.99, "suite average {}", sum / n as f64);
}

#[test]
fn static_rules_alone_are_weaker_than_the_arpt_on_average() {
    // Per the paper's Figure 4: the 1-bit ARPT beats pure static
    // classification on average (individual programs may disagree — an
    // instruction that thrashes a 1-bit entry can favour rule 4's fixed
    // guess).
    let (mut sum_static, mut sum_onebit, mut n) = (0.0, 0.0, 0);
    for spec in suite() {
        let program = spec.build(Scale::tiny());
        let (staticonly, _) = run_eval(
            &program,
            EvalConfig {
                kind: PredictorKind::StaticOnly,
                context: Context::None,
                capacity: Capacity::Unlimited,
                hints: None,
            },
        );
        let (onebit, _) = run_eval(&program, one_bit(Context::None, Capacity::Unlimited, None));
        sum_static += staticonly;
        sum_onebit += onebit;
        n += 1;
    }
    assert!(
        sum_onebit / n as f64 > sum_static / n as f64,
        "1BIT must beat STATIC on average: {} vs {}",
        sum_onebit / n as f64,
        sum_static / n as f64
    );
}

#[test]
fn hints_never_hurt_and_fix_small_tables() {
    for name in ["perl", "ijpeg", "tomcatv"] {
        let spec = workload(name).unwrap();
        let program = spec.build(Scale::tiny());
        // Profile-derived hints (the paper's upper bound).
        let mut m = Machine::new(&program);
        let mut profiler = RegionProfiler::new();
        m.run_with(CAP, |e| profiler.observe(e)).expect("runs");
        let hints = HintTable::from_profile(&profiler);

        let small = Capacity::Entries(1 << 13);
        let (without, _) = run_eval(&program, one_bit(Context::HYBRID_8_24, small, None));
        let (with, _) = run_eval(&program, one_bit(Context::HYBRID_8_24, small, Some(hints)));
        assert!(
            with >= without - 1e-9,
            "{name}: hints must not hurt ({with} vs {without})"
        );
        assert!(with > 0.99, "{name}: hinted 8K table accuracy {with}");
    }
}

#[test]
fn compiler_hints_from_figure6_are_sound() {
    // Static (realizable) hints must never contradict observed behaviour:
    // accuracy with Figure 6 hints stays at least as high as without.
    for name in ["gcc", "li", "vortex"] {
        let spec = workload(name).unwrap();
        let program = spec.build(Scale::tiny());
        let hints = HintTable::from_program(&program);
        assert!(hints.definite_count() > 0);
        let (with, _) = run_eval(
            &program,
            one_bit(Context::None, Capacity::Unlimited, Some(hints)),
        );
        let (without, _) = run_eval(&program, one_bit(Context::None, Capacity::Unlimited, None));
        assert!(
            with >= without - 0.001,
            "{name}: Figure 6 hints are sound ({with} vs {without})"
        );
    }
}

#[test]
fn context_indexing_occupies_more_entries() {
    // Table 3's structural claim: adding context bits cannot shrink the
    // set of occupied entries below pc-only indexing (and the hybrid is
    // the largest).
    for name in ["go", "gcc", "perl"] {
        let spec = workload(name).unwrap();
        let program = spec.build(Scale::tiny());
        let (_, pc_only) = run_eval(&program, one_bit(Context::None, Capacity::Unlimited, None));
        let (_, hybrid) = run_eval(
            &program,
            one_bit(Context::HYBRID_8_24, Capacity::Unlimited, None),
        );
        assert!(
            hybrid.unwrap() >= pc_only.unwrap(),
            "{name}: hybrid context cannot use fewer entries"
        );
    }
}
